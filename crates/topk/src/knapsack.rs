//! The fractional-knapsack tight threshold of Section 5.1.

use pref_geom::Point;

/// Computes the tight TA termination threshold `T_tight` for an object `o`.
///
/// `last_seen[i]` is the last coefficient value drawn in sorted (descending)
/// order from list `L_i`; any function not yet encountered has `α_i ≤
/// last_seen[i]` in every dimension, and its coefficients sum to at most
/// `budget` (1 for normalized functions, `max γ` for prioritized ones). The
/// best score such a function could achieve on `o` is therefore the solution
/// of a fractional knapsack: choose `β_i ≤ last_seen[i]` with `Σ β_i ≤ budget`
/// maximizing `Σ β_i · o_i`, solved greedily by filling the dimensions in
/// decreasing order of `o_i`.
pub fn tight_threshold(object: &Point, last_seen: &[f64], budget: f64) -> f64 {
    debug_assert_eq!(object.dims(), last_seen.len());
    debug_assert!(budget >= 0.0);
    // rank dimensions by the object's coordinate, descending
    let mut order: Vec<usize> = (0..object.dims()).collect();
    order.sort_by(|&a, &b| {
        object
            .coord(b)
            .partial_cmp(&object.coord(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut remaining = budget;
    let mut bound = 0.0;
    for dim in order {
        if remaining <= 0.0 {
            break;
        }
        let beta = remaining.min(last_seen[dim].max(0.0));
        bound += beta * object.coord(dim);
        remaining -= beta;
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use pref_geom::LinearFunction;
    use proptest::prelude::*;

    #[test]
    fn paper_running_example() {
        // Section 5.1: o = (10, 6, 8), last seen l = (0.8, 0.8, 0.9).
        // Greedy fill: dimension 1 gets 0.8, dimension 3 gets 0.2 -> T = 9.6.
        let o = Point::from_slice(&[10.0, 6.0, 8.0]);
        let t = tight_threshold(&o, &[0.8, 0.8, 0.9], 1.0);
        assert!((t - 9.6).abs() < 1e-12);
        // After the next access l1 drops to 0.5: T = 0.5*10 + 0.5*8 = 9.
        let t = tight_threshold(&o, &[0.5, 0.8, 0.9], 1.0);
        assert!((t - 9.0).abs() < 1e-12);
    }

    #[test]
    fn loose_sum_would_overestimate() {
        // The naive TA threshold Σ l_i · o_i ignores the normalization
        // constraint and is strictly looser here.
        let o = Point::from_slice(&[10.0, 6.0, 8.0]);
        let naive = 0.8 * 10.0 + 0.8 * 6.0 + 0.9 * 8.0;
        let tight = tight_threshold(&o, &[0.8, 0.8, 0.9], 1.0);
        assert!(tight < naive);
    }

    #[test]
    fn budget_zero_gives_zero() {
        let o = Point::from_slice(&[1.0, 1.0]);
        assert_eq!(tight_threshold(&o, &[1.0, 1.0], 0.0), 0.0);
    }

    #[test]
    fn large_budget_is_capped_by_last_seen() {
        let o = Point::from_slice(&[0.5, 0.5]);
        // even with budget 10, each coefficient is at most its last-seen value
        let t = tight_threshold(&o, &[0.3, 0.2], 10.0);
        assert!((t - (0.3 * 0.5 + 0.2 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn prioritized_budget_scales_threshold() {
        let o = Point::from_slice(&[0.9, 0.1]);
        let t1 = tight_threshold(&o, &[1.0, 1.0], 1.0);
        let t4 = tight_threshold(&o, &[4.0, 4.0], 4.0);
        assert!((t4 - 4.0 * t1).abs() < 1e-9);
    }

    #[test]
    fn negative_last_seen_values_are_clamped() {
        let o = Point::from_slice(&[0.5, 0.5]);
        let t = tight_threshold(&o, &[-0.2, 0.4], 1.0);
        assert!((t - 0.2).abs() < 1e-12);
    }

    proptest! {
        /// Soundness: the tight threshold upper-bounds the score of every
        /// normalized function whose coefficients are bounded by `last_seen`.
        #[test]
        fn upper_bounds_all_feasible_functions(
            o in proptest::collection::vec(0.0f64..1.0, 3),
            raw_w in proptest::collection::vec(0.01f64..1.0, 3),
            slack in proptest::collection::vec(0.0f64..0.3, 3),
        ) {
            let object = Point::new(o).unwrap();
            let f = LinearFunction::new(raw_w).unwrap();
            // last_seen dominates the function's true coefficients
            let last_seen: Vec<f64> = f.weights().iter().zip(&slack).map(|(w, s)| w + s).collect();
            let t = tight_threshold(&object, &last_seen, 1.0);
            prop_assert!(f.score(&object) <= t + 1e-9);
        }

        /// Monotonicity: lowering the last-seen vector never raises the bound.
        #[test]
        fn monotone_in_last_seen(
            o in proptest::collection::vec(0.0f64..1.0, 4),
            hi in proptest::collection::vec(0.0f64..1.0, 4),
            shrink in proptest::collection::vec(0.0f64..1.0, 4),
        ) {
            let object = Point::new(o).unwrap();
            let lo: Vec<f64> = hi.iter().zip(&shrink).map(|(h, s)| h * s).collect();
            let t_hi = tight_threshold(&object, &hi, 1.0);
            let t_lo = tight_threshold(&object, &lo, 1.0);
            prop_assert!(t_lo <= t_hi + 1e-12);
        }
    }
}
