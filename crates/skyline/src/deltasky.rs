//! A DeltaSky-style baseline for skyline maintenance under deletions.
//!
//! DeltaSky (Wu et al., ICDE 2007) maintains the skyline without materializing
//! exclusive dominance regions, but — unlike the paper's UpdateSkyline — it
//! keeps no pruned lists: every deletion triggers a fresh constrained
//! traversal of the R-tree from the root. Consequently it may read the same
//! node many times across a long sequence of deletions, which is precisely
//! the behaviour the paper's Figure 8 compares against.

use crate::bbs::HeapEntry;
use crate::set::{Skyline, SkylineObject};
use pref_geom::edr::mbr_may_intersect_edr;
use pref_geom::Point;
use pref_rtree::{NodeEntry, RTree, RecordId};
use std::collections::BinaryHeap;

/// Maintains `skyline` after removing the given skyline objects, using a
/// DeltaSky-style constrained re-traversal per removed object.
///
/// `excluded` is a predicate returning `true` for *every* object removed from
/// the problem so far (the assigned objects), because — unlike UpdateSkyline —
/// this baseline re-reads R-tree nodes and would otherwise rediscover them.
/// Callers with a `HashSet` pass `&|r| set.contains(&r)`; the SB solver passes
/// a closure over its dense per-object exclusion slab. The pruned lists
/// carried by `removed` are ignored.
pub fn delta_sky_update<F: Fn(RecordId) -> bool>(
    tree: &mut RTree,
    skyline: &mut Skyline,
    removed: Vec<SkylineObject>,
    excluded: &F,
) {
    for object in removed {
        single_removal(tree, skyline, &object.data.point, excluded);
    }
}

/// Processes one removed skyline point: a constrained BBS over the part of the
/// space that the removed point exclusively dominated.
fn single_removal<F: Fn(RecordId) -> bool>(
    tree: &mut RTree,
    skyline: &mut Skyline,
    removed_point: &Point,
    excluded: &F,
) {
    let Some((_, root_entries)) = tree.root_entries() else {
        return;
    };
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
    for entry in root_entries {
        if may_be_relevant(&entry, removed_point, skyline, excluded) {
            heap.push(HeapEntry::new(entry));
        }
    }
    while let Some(HeapEntry { entry, .. }) = heap.pop() {
        // Re-check dominance: the skyline may have grown since the entry was
        // en-heaped.
        if !may_be_relevant(&entry, removed_point, skyline, excluded) {
            continue;
        }
        match entry {
            NodeEntry::Data(data) => {
                // In the EDR and not dominated by the current skyline: a new
                // skyline object.
                skyline.insert(SkylineObject::new(data));
            }
            NodeEntry::Child { page, .. } => {
                let (_, children) = tree.node_entries(page);
                for child in children {
                    if may_be_relevant(&child, removed_point, skyline, excluded) {
                        heap.push(HeapEntry::new(child));
                    }
                }
            }
        }
    }
}

/// `true` iff the entry may still contribute a new skyline point located in
/// the exclusive dominance region of `removed_point`.
fn may_be_relevant<F: Fn(RecordId) -> bool>(
    entry: &NodeEntry,
    removed_point: &Point,
    skyline: &Skyline,
    excluded: &F,
) -> bool {
    match entry {
        NodeEntry::Data(d) => {
            !excluded(d.record)
                && !skyline.contains(d.record)
                && removed_point.dominates_or_equal(&d.point)
                && !skyline.dominates_point(&d.point)
        }
        NodeEntry::Child { mbr, .. } => {
            mbr_may_intersect_edr(mbr, removed_point, skyline.data_entries().map(|d| &d.point))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbs::compute_skyline_bbs;
    use crate::maintain::update_skyline;
    use crate::memory::skyline_naive;
    use pref_rtree::RTreeConfig;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use std::collections::HashSet;

    fn random_points(n: u64, dims: usize, seed: u64) -> Vec<(RecordId, Point)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    RecordId(i),
                    Point::from_slice(
                        &(0..dims)
                            .map(|_| rng.gen_range(0.0..1.0))
                            .collect::<Vec<_>>(),
                    ),
                )
            })
            .collect()
    }

    fn build(points: &[(RecordId, Point)], fanout: usize) -> RTree {
        let dims = points[0].1.dims();
        RTree::bulk_load(
            RTreeConfig::for_dims(dims).with_fanout(fanout),
            points.to_vec(),
        )
        .unwrap()
    }

    #[test]
    fn matches_oracle_over_a_sequence_of_removals() {
        for (dims, seed) in [(2usize, 71u64), (3, 72), (4, 73)] {
            let points = random_points(300, dims, seed);
            let mut tree = build(&points, 8);
            let mut sky = compute_skyline_bbs(&mut tree);
            let mut remaining = points.clone();
            let mut excluded: HashSet<RecordId> = HashSet::new();
            for _ in 0..30 {
                if sky.is_empty() {
                    break;
                }
                let victim = *sky.records().iter().min().unwrap();
                let obj = sky.remove(victim).unwrap();
                excluded.insert(victim);
                remaining.retain(|(r, _)| *r != victim);
                delta_sky_update(&mut tree, &mut sky, vec![obj], &|r| excluded.contains(&r));
                let mut got: Vec<u64> = sky.records().iter().map(|r| r.0).collect();
                got.sort_unstable();
                let mut want: Vec<u64> = skyline_naive(&remaining).iter().map(|r| r.0).collect();
                want.sort_unstable();
                assert_eq!(got, want, "dims={dims} seed={seed}");
            }
        }
    }

    #[test]
    fn agrees_with_update_skyline() {
        let points = random_points(400, 3, 81);
        // two independent trees so the I/O accounting of one run does not
        // disturb the other
        let mut tree_a = build(&points, 12);
        let mut tree_b = build(&points, 12);
        let mut sky_a = compute_skyline_bbs(&mut tree_a);
        let mut sky_b = compute_skyline_bbs(&mut tree_b);
        let mut excluded = HashSet::new();
        for _ in 0..40 {
            if sky_a.is_empty() {
                break;
            }
            let victim = *sky_a.records().iter().min().unwrap();
            excluded.insert(victim);
            let obj_a = sky_a.remove(victim).unwrap();
            let obj_b = sky_b.remove(victim).unwrap();
            update_skyline(&mut tree_a, &mut sky_a, vec![obj_a]);
            delta_sky_update(&mut tree_b, &mut sky_b, vec![obj_b], &|r| {
                excluded.contains(&r)
            });
            let mut a: Vec<u64> = sky_a.records().iter().map(|r| r.0).collect();
            let mut b: Vec<u64> = sky_b.records().iter().map(|r| r.0).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn deltasky_costs_more_io_than_update_skyline() {
        // the headline claim of Figure 8(a): the pruned-list approach saves
        // an order of magnitude of node accesses on anti-correlated data
        let mut rng = StdRng::seed_from_u64(91);
        let dims = 3;
        let points: Vec<(RecordId, Point)> = (0..1500)
            .map(|i| {
                let mut c: Vec<f64> = (0..dims).map(|_| rng.gen_range(0.0..1.0)).collect();
                let sum: f64 = c.iter().sum();
                let shift = (dims as f64 / 2.0 - sum) / dims as f64 * 0.8;
                for v in &mut c {
                    *v = (*v + shift).clamp(0.0, 1.0);
                }
                (RecordId(i), Point::from_slice(&c))
            })
            .collect();
        let mut tree_a = build(&points, 16);
        let mut tree_b = build(&points, 16);
        let mut sky_a = compute_skyline_bbs(&mut tree_a);
        let mut sky_b = compute_skyline_bbs(&mut tree_b);
        tree_a.reset_stats();
        tree_b.reset_stats();
        let mut excluded = HashSet::new();
        for _ in 0..150 {
            if sky_a.is_empty() {
                break;
            }
            let victim = *sky_a.records().iter().min().unwrap();
            excluded.insert(victim);
            let obj_a = sky_a.remove(victim).unwrap();
            let obj_b = sky_b.remove(victim).unwrap();
            update_skyline(&mut tree_a, &mut sky_a, vec![obj_a]);
            delta_sky_update(&mut tree_b, &mut sky_b, vec![obj_b], &|r| {
                excluded.contains(&r)
            });
        }
        let update_io = tree_a.stats().logical_reads;
        let delta_io = tree_b.stats().logical_reads;
        assert!(
            delta_io > update_io * 2,
            "DeltaSky ({delta_io}) should cost well over 2x UpdateSkyline ({update_io})"
        );
    }
}
