//! Insertion-aware skyline maintenance.
//!
//! The paper's `UpdateSkyline` (Algorithm 2) only handles *removals* — the SB
//! batch solver never sees a new object arrive. A long-lived assignment
//! engine does, so this module adds the missing direction. Insertion is the
//! cheap direction: deciding where a single new point belongs requires **no
//! R-tree I/O at all**, because the maintained skyline already knows the
//! dominance frontier.
//!
//! * If some skyline object dominates the new point, the point is attached to
//!   that object's pruned list — exactly where BBS would have put it — so it
//!   resurfaces through `UpdateSkyline` if its dominator is later removed.
//! * Otherwise the point joins the skyline. Existing skyline objects it
//!   dominates are demoted: each demoted object's data entry, together with
//!   its entire pruned list, moves into the new object's pruned list
//!   (dominance is transitive, so the single-owner invariant is preserved).

use crate::set::{Skyline, SkylineObject};
use pref_rtree::{DataEntry, NodeEntry, RecordId};

/// Where [`insert_skyline`] placed the new point.
#[derive(Debug, Clone, PartialEq)]
pub enum SkylineInsertion {
    /// The point is dominated by an existing skyline object and was attached
    /// to that object's pruned list.
    Covered,
    /// The point joined the skyline; `demoted` lists the records it pushed
    /// off the skyline (now dominated, absorbed into the new object's pruned
    /// list).
    Entered {
        /// Records removed from the skyline by the new point.
        demoted: Vec<RecordId>,
    },
}

impl SkylineInsertion {
    /// `true` when the point joined the skyline.
    pub fn entered(&self) -> bool {
        matches!(self, SkylineInsertion::Entered { .. })
    }
}

/// Maintains `skyline` after a new object arrived, without any R-tree access.
///
/// The caller is responsible for the record being genuinely new (not already
/// on the skyline or in a pruned list); the engine guarantees this by
/// rejecting duplicate record ids at its API boundary.
pub fn insert_skyline(skyline: &mut Skyline, data: DataEntry) -> SkylineInsertion {
    debug_assert!(
        !skyline.contains(data.record),
        "insert_skyline on a record already on the skyline: {}",
        data.record
    );
    let data = match skyline.attach_to_dominator(NodeEntry::Data(data)) {
        Ok(()) => return SkylineInsertion::Covered,
        Err(NodeEntry::Data(data)) => data,
        Err(NodeEntry::Child { .. }) => unreachable!("a data entry stays a data entry"),
    };

    // The point is not dominated: it joins the skyline. Demote every skyline
    // object the new point dominates, folding it (and everything it owns)
    // into the new object's pruned list.
    let victims: Vec<RecordId> = skyline
        .iter()
        .filter(|o| data.point.dominates(&o.data.point))
        .map(|o| o.data.record)
        .collect();
    let mut object = SkylineObject::new(data);
    for record in &victims {
        let demoted = skyline
            .remove(*record)
            .expect("victim was collected from the live skyline");
        object.plist.extend(demoted.plist);
        object.plist.push(NodeEntry::Data(demoted.data));
    }
    skyline.insert(object);
    SkylineInsertion::Entered { demoted: victims }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbs::compute_skyline_bbs;
    use crate::maintain::update_skyline;
    use crate::memory::skyline_naive;
    use pref_geom::Point;
    use pref_rtree::{RTree, RTreeConfig};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn data(id: u64, coords: &[f64]) -> DataEntry {
        DataEntry::new(RecordId(id), Point::from_slice(coords))
    }

    #[test]
    fn dominated_point_is_covered() {
        let mut sky = Skyline::new();
        sky.insert(SkylineObject::new(data(0, &[0.9, 0.9])));
        let outcome = insert_skyline(&mut sky, data(1, &[0.5, 0.5]));
        assert_eq!(outcome, SkylineInsertion::Covered);
        assert!(!outcome.entered());
        assert_eq!(sky.len(), 1);
        assert_eq!(sky.get(RecordId(0)).unwrap().plist.len(), 1);
    }

    #[test]
    fn incomparable_point_enters_without_demotions() {
        let mut sky = Skyline::new();
        sky.insert(SkylineObject::new(data(0, &[0.9, 0.1])));
        let outcome = insert_skyline(&mut sky, data(1, &[0.1, 0.9]));
        assert_eq!(
            outcome,
            SkylineInsertion::Entered {
                demoted: Vec::new()
            }
        );
        assert_eq!(sky.len(), 2);
    }

    #[test]
    fn equal_point_joins_like_bbs_duplicates() {
        // BBS lets duplicate points coexist on the skyline (neither dominates
        // the other); insertion must agree.
        let mut sky = Skyline::new();
        sky.insert(SkylineObject::new(data(0, &[0.7, 0.7])));
        let outcome = insert_skyline(&mut sky, data(1, &[0.7, 0.7]));
        assert!(outcome.entered());
        assert_eq!(sky.len(), 2);
    }

    #[test]
    fn dominating_point_absorbs_victims_and_their_plists() {
        let mut sky = Skyline::new();
        sky.insert(SkylineObject::new(data(0, &[0.6, 0.5])));
        sky.insert(SkylineObject::new(data(1, &[0.2, 0.9])));
        // give the soon-to-be victim a pruned entry
        sky.attach_to_dominator(NodeEntry::Data(data(5, &[0.5, 0.4])))
            .unwrap();
        let outcome = insert_skyline(&mut sky, data(2, &[0.8, 0.6]));
        assert_eq!(
            outcome,
            SkylineInsertion::Entered {
                demoted: vec![RecordId(0)]
            }
        );
        assert_eq!(sky.len(), 2);
        assert!(sky.contains(RecordId(2)));
        assert!(sky.contains(RecordId(1)));
        // the new object owns the victim and the victim's pruned entry
        let owner = sky.get(RecordId(2)).unwrap();
        assert_eq!(owner.plist.len(), 2);
        for e in &owner.plist {
            assert!(owner.data.point.dominates(&e.mbr().top_corner()));
        }
    }

    #[test]
    fn random_insert_sequences_match_naive_oracle() {
        for (dims, seed) in [(2usize, 11u64), (3, 12), (4, 13)] {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sky = Skyline::new();
            let mut all: Vec<(RecordId, Point)> = Vec::new();
            for i in 0..400u64 {
                let p = Point::from_slice(
                    &(0..dims)
                        .map(|_| rng.gen_range(0.0..1.0))
                        .collect::<Vec<_>>(),
                );
                all.push((RecordId(i), p.clone()));
                insert_skyline(&mut sky, DataEntry::new(RecordId(i), p));
                if i % 37 == 0 {
                    let mut got: Vec<u64> = sky.records().iter().map(|r| r.0).collect();
                    got.sort_unstable();
                    let mut want: Vec<u64> = skyline_naive(&all).iter().map(|r| r.0).collect();
                    want.sort_unstable();
                    assert_eq!(got, want, "dims={dims} seed={seed} step={i}");
                }
            }
        }
    }

    #[test]
    fn interleaved_insertions_and_removals_match_naive_oracle() {
        // Insertions are memory-only, removals go through UpdateSkyline with
        // the tree: the two maintenance directions must compose. The tree
        // holds the initial bulk load; arrivals live only in the in-memory
        // skyline bookkeeping (the engine's strategy), so UpdateSkyline finds
        // demoted arrivals again through the pruned lists alone.
        let mut rng = StdRng::seed_from_u64(77);
        let dims = 3;
        let initial: Vec<(RecordId, Point)> = (0..250u64)
            .map(|i| {
                (
                    RecordId(i),
                    Point::from_slice(
                        &(0..dims)
                            .map(|_| rng.gen_range(0.0..1.0))
                            .collect::<Vec<_>>(),
                    ),
                )
            })
            .collect();
        let mut tree =
            RTree::bulk_load(RTreeConfig::for_dims(dims).with_fanout(8), initial.clone()).unwrap();
        let mut sky = compute_skyline_bbs(&mut tree);
        let mut live = initial;
        let mut next_id = 250u64;
        for step in 0..120 {
            if rng.gen_bool(0.5) || sky.is_empty() {
                let p = Point::from_slice(
                    &(0..dims)
                        .map(|_| rng.gen_range(0.0..1.0))
                        .collect::<Vec<_>>(),
                );
                live.push((RecordId(next_id), p.clone()));
                insert_skyline(&mut sky, DataEntry::new(RecordId(next_id), p));
                next_id += 1;
            } else {
                let victim = *sky.records().iter().min().unwrap();
                let obj = sky.remove(victim).unwrap();
                live.retain(|(r, _)| *r != victim);
                update_skyline(&mut tree, &mut sky, vec![obj]);
            }
            let mut got: Vec<u64> = sky.records().iter().map(|r| r.0).collect();
            got.sort_unstable();
            let mut want: Vec<u64> = skyline_naive(&live).iter().map(|r| r.0).collect();
            want.sort_unstable();
            assert_eq!(got, want, "divergence at step {step}");
        }
    }
}
