//! Branch-and-Bound Skyline (BBS) with pruned-entry tracking.

use crate::set::{Skyline, SkylineObject};
use pref_rtree::{NodeEntry, RTree, RecordId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap element: an R-tree entry keyed by the L1 distance of its best corner
/// to the sky point (ascending — closest to the sky point first).
pub(crate) struct HeapEntry {
    pub dist: f64,
    pub entry: NodeEntry,
}

impl HeapEntry {
    pub(crate) fn new(entry: NodeEntry) -> Self {
        let dist = entry.mbr().l1_dist_to_sky();
        Self { dist, entry }
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to pop the smallest distance first.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
    }
}

/// Computes the skyline of all objects indexed by `tree` using BBS
/// (Papadias et al.), modified as in Section 5.2 of the paper to keep track of
/// pruned entries: every pruned node entry or data object is appended to the
/// pruned list of exactly one skyline object that dominates it.
///
/// Node accesses are charged to the tree's I/O statistics. The algorithm is
/// I/O optimal: it visits exactly the nodes whose best corner is not dominated
/// by the skyline.
pub fn compute_skyline_bbs(tree: &mut RTree) -> Skyline {
    let mut skyline = Skyline::new();
    let Some((_, root_entries)) = tree.root_entries() else {
        return skyline;
    };
    let mut heap: BinaryHeap<HeapEntry> = root_entries.into_iter().map(HeapEntry::new).collect();
    resume_skyline(tree, &mut skyline, &mut heap);
    skyline
}

/// The shared BBS / ResumeSkyline loop (Algorithm 2, `ResumeSkyline`): pops
/// entries in ascending distance to the sky point; dominated entries go to the
/// pruned list of a dominating skyline object, non-dominated data entries
/// become skyline objects, and non-dominated node entries are expanded.
pub(crate) fn resume_skyline(
    tree: &mut RTree,
    skyline: &mut Skyline,
    heap: &mut BinaryHeap<HeapEntry>,
) {
    resume_skyline_filtered(tree, skyline, heap, &|_| false);
}

/// [`resume_skyline`] with a drop filter: data entries for which `drop`
/// returns `true` are discarded instead of joining the skyline or a pruned
/// list. The long-lived assignment engine uses the filter to keep departed and
/// fully assigned objects out of the maintained free-pool skyline; records
/// already on the skyline are likewise skipped, which makes the loop
/// idempotent in the face of the duplicate data entries a dynamically
/// maintained R-tree can surface (an inserted object is tracked in memory
/// *and* lands on a tree page that may sit un-expanded in a pruned list).
pub(crate) fn resume_skyline_filtered(
    tree: &mut RTree,
    skyline: &mut Skyline,
    heap: &mut BinaryHeap<HeapEntry>,
    drop: &dyn Fn(RecordId) -> bool,
) {
    while let Some(HeapEntry { entry, .. }) = heap.pop() {
        if let NodeEntry::Data(data) = &entry {
            if drop(data.record) || skyline.contains(data.record) {
                continue;
            }
        }
        // If a skyline object dominates the entry, move it to that object's
        // pruned list and continue.
        let entry = match skyline.attach_to_dominator(entry) {
            Ok(()) => continue,
            Err(entry) => entry,
        };
        match entry {
            NodeEntry::Data(data) => {
                skyline.insert(SkylineObject::new(data));
            }
            NodeEntry::Child { page, .. } => {
                let (_, children) = tree.node_entries(page);
                for child in children {
                    heap.push(HeapEntry::new(child));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::skyline_naive;
    use pref_geom::Point;
    use pref_rtree::{DataEntry, RTreeConfig, RecordId};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn build_tree(points: &[(RecordId, Point)], fanout: usize) -> RTree {
        let dims = points[0].1.dims();
        RTree::bulk_load(
            RTreeConfig::for_dims(dims).with_fanout(fanout),
            points.to_vec(),
        )
        .unwrap()
    }

    fn random_points(n: u64, dims: usize, seed: u64) -> Vec<(RecordId, Point)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    RecordId(i),
                    Point::from_slice(
                        &(0..dims)
                            .map(|_| rng.gen_range(0.0..1.0))
                            .collect::<Vec<_>>(),
                    ),
                )
            })
            .collect()
    }

    fn sorted_records(sky: &Skyline) -> Vec<u64> {
        let mut v: Vec<u64> = sky.records().iter().map(|r| r.0).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree_has_empty_skyline() {
        let mut tree = RTree::with_dims(2);
        let sky = compute_skyline_bbs(&mut tree);
        assert!(sky.is_empty());
    }

    #[test]
    fn paper_figure1_example() {
        let points = vec![
            (RecordId(0), Point::from_slice(&[0.5, 0.6])), // a
            (RecordId(1), Point::from_slice(&[0.2, 0.7])), // b
            (RecordId(2), Point::from_slice(&[0.8, 0.2])), // c
            (RecordId(3), Point::from_slice(&[0.4, 0.4])), // d
        ];
        let mut tree = build_tree(&points, 8);
        let sky = compute_skyline_bbs(&mut tree);
        assert_eq!(sorted_records(&sky), vec![0, 1, 2]);
        // d must be in exactly one pruned list (owned by a, the only dominator)
        let owner = sky.get(RecordId(0)).unwrap();
        assert!(owner
            .plist
            .iter()
            .any(|e| e.as_data().map(|d| d.record) == Some(RecordId(3))));
    }

    #[test]
    fn matches_naive_oracle_on_random_data() {
        for dims in 2..=4 {
            for seed in [1u64, 2, 3] {
                let points = random_points(400, dims, seed);
                let mut tree = build_tree(&points, 16);
                let sky = compute_skyline_bbs(&mut tree);
                let mut want: Vec<u64> = skyline_naive(&points).iter().map(|r| r.0).collect();
                want.sort_unstable();
                assert_eq!(sorted_records(&sky), want, "dims={dims} seed={seed}");
            }
        }
    }

    #[test]
    fn every_pruned_entry_is_dominated_by_its_owner() {
        let points = random_points(500, 3, 9);
        let mut tree = build_tree(&points, 12);
        let sky = compute_skyline_bbs(&mut tree);
        for obj in sky.iter() {
            for pruned in &obj.plist {
                let top = pruned.mbr().top_corner();
                assert!(
                    obj.data.point.dominates(&top),
                    "pruned entry not dominated by its owner"
                );
            }
        }
    }

    #[test]
    fn every_non_skyline_object_is_accounted_for() {
        // every data record is either on the skyline, inside a pruned data
        // entry, or inside a pruned subtree
        let points = random_points(300, 2, 10);
        let mut tree = build_tree(&points, 8);
        let sky = compute_skyline_bbs(&mut tree);
        let mut accounted: std::collections::HashSet<u64> =
            sky.records().iter().map(|r| r.0).collect();
        for obj in sky.iter() {
            for pruned in &obj.plist {
                match pruned {
                    NodeEntry::Data(d) => {
                        accounted.insert(d.record.0);
                    }
                    NodeEntry::Child { page, .. } => {
                        // collect the subtree's records without charging I/O
                        let mut stack = vec![*page];
                        while let Some(p) = stack.pop() {
                            let (_, entries) = tree.node_entries(p);
                            for e in entries {
                                match e {
                                    NodeEntry::Data(d) => {
                                        accounted.insert(d.record.0);
                                    }
                                    NodeEntry::Child { page, .. } => stack.push(page),
                                }
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(accounted.len(), points.len());
    }

    #[test]
    fn bbs_io_is_no_worse_than_full_scan() {
        let points = random_points(3000, 3, 11);
        let mut tree = build_tree(&points, 32);
        tree.reset_stats();
        let _sky = compute_skyline_bbs(&mut tree);
        let bbs_io = tree.stats().logical_reads;
        assert!(
            (bbs_io as usize) < tree.num_pages(),
            "BBS ({bbs_io}) must access fewer nodes than a full scan ({})",
            tree.num_pages()
        );
    }

    #[test]
    fn correlated_data_has_tiny_skyline_and_tiny_io() {
        // strongly correlated points: skyline is small, BBS touches few nodes
        let mut rng = StdRng::seed_from_u64(13);
        let points: Vec<(RecordId, Point)> = (0..2000)
            .map(|i| {
                let base: f64 = rng.gen_range(0.0..1.0);
                let jitter = |r: &mut StdRng| (r.gen_range(-0.03..0.03f64)).clamp(-0.5, 0.5);
                (
                    RecordId(i),
                    Point::from_slice(&[
                        (base + jitter(&mut rng)).clamp(0.0, 1.0),
                        (base + jitter(&mut rng)).clamp(0.0, 1.0),
                        (base + jitter(&mut rng)).clamp(0.0, 1.0),
                    ]),
                )
            })
            .collect();
        let mut tree = build_tree(&points, 32);
        tree.reset_stats();
        let sky = compute_skyline_bbs(&mut tree);
        assert!(
            sky.len() < 50,
            "correlated skyline should be small: {}",
            sky.len()
        );
        assert!(tree.stats().logical_reads < tree.num_pages() as u64 / 2);
    }

    #[test]
    fn duplicate_points_both_reach_skyline() {
        let points = vec![
            (RecordId(0), Point::from_slice(&[0.9, 0.9])),
            (RecordId(1), Point::from_slice(&[0.9, 0.9])),
            (RecordId(2), Point::from_slice(&[0.1, 0.1])),
        ];
        let mut tree = build_tree(&points, 8);
        let sky = compute_skyline_bbs(&mut tree);
        assert_eq!(sorted_records(&sky), vec![0, 1]);
    }

    #[test]
    fn heap_entry_ordering_is_min_first() {
        let near = HeapEntry::new(NodeEntry::Data(DataEntry::new(
            RecordId(0),
            Point::from_slice(&[0.9, 0.9]),
        )));
        let far = HeapEntry::new(NodeEntry::Data(DataEntry::new(
            RecordId(1),
            Point::from_slice(&[0.1, 0.1]),
        )));
        let mut heap = BinaryHeap::new();
        heap.push(far);
        heap.push(near);
        let first = heap.pop().unwrap();
        assert!(first.dist < 0.5, "closest to the sky point pops first");
    }
}
