//! Skyline computation and incremental maintenance.
//!
//! The SB assignment algorithm of the VLDB 2009 paper is built on two skyline
//! modules:
//!
//! * an initial skyline computation over the object R-tree — Branch-and-Bound
//!   Skyline (**BBS**, Papadias et al.), modified to remember which pruned
//!   entry went into which skyline object's *pruned list* (`plist`), and
//! * an incremental, deletion-side maintenance module — **UpdateSkyline**
//!   (Algorithm 2 of the paper), which is I/O-optimal: it only ever visits
//!   nodes that intersect the exclusive dominance region of the removed
//!   objects and never reads the same R-tree node twice over the whole
//!   assignment computation (Theorem 1), and
//! * an insertion-side maintenance module — [`insert_skyline`] — used by the
//!   long-lived assignment engine: classifying a new arrival against the
//!   maintained skyline (attach to a dominator's pruned list, or join the
//!   skyline and demote what it dominates) needs no R-tree I/O at all, and
//! * structural patch operations keeping the pruned lists consistent while
//!   the underlying R-tree changes shape: [`Skyline::patch_page_split`] for
//!   the node splits of dynamic insertion, and [`Skyline::patch_page_delete`]
//!   for the freed pages, re-inserted orphans and MBR shrinks of physical
//!   deletion (CondenseTree) — so a long-lived engine can delete departed
//!   records instead of accumulating tombstones forever.
//!
//! For comparison the crate also implements a **DeltaSky-style** baseline that
//! re-traverses the tree from the root for every removed skyline object, plus
//! memory-resident algorithms (BNL, SFS, a naive oracle and a k-skyband
//! operator) used for testing and for the variant where `O` fits in memory.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bbs;
mod deltasky;
mod insert;
mod maintain;
mod memory;
mod set;

pub use bbs::compute_skyline_bbs;
pub use deltasky::delta_sky_update;
pub use insert::{insert_skyline, SkylineInsertion};
pub use maintain::{update_skyline, update_skyline_filtered};
pub use memory::{k_skyband, skyline_bnl, skyline_naive, skyline_of_entries, skyline_sfs};
pub use set::{Skyline, SkylineObject};
