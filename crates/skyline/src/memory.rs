//! Memory-resident skyline algorithms: BNL, SFS, a naive oracle and k-skyband.
//!
//! These are used (i) as test oracles for the index-based algorithms, (ii) for
//! the storage variant where the object set fits in memory, and (iii) for the
//! function skyline `Fsky` of the prioritized two-skyline technique, whose
//! input (the set of effective weight vectors) is never indexed.

use pref_geom::Point;
use pref_rtree::{DataEntry, RecordId};

/// Quadratic-time reference skyline; the unambiguous oracle for tests.
pub fn skyline_naive(points: &[(RecordId, Point)]) -> Vec<RecordId> {
    let mut out = Vec::new();
    for (i, (r, p)) in points.iter().enumerate() {
        let dominated = points
            .iter()
            .enumerate()
            .any(|(j, (_, q))| j != i && q.dominates(p));
        if !dominated {
            out.push(*r);
        }
    }
    out
}

/// Block-nested-loop skyline (Börzsönyi et al.): one pass over the data,
/// keeping the set of currently non-dominated points.
pub fn skyline_bnl(points: &[(RecordId, Point)]) -> Vec<RecordId> {
    let mut window: Vec<(RecordId, &Point)> = Vec::new();
    'outer: for (r, p) in points {
        let mut i = 0;
        while i < window.len() {
            let (_, w) = window[i];
            if w.dominates_or_equal(p) && !(w == p) {
                // dominated by a window point: discard
                continue 'outer;
            }
            if w == p {
                // identical coordinates: both stay (neither dominates)
                i += 1;
                continue;
            }
            if p.dominates(w) {
                window.swap_remove(i);
                continue;
            }
            i += 1;
        }
        window.push((*r, p));
    }
    window.into_iter().map(|(r, _)| r).collect()
}

/// Sort-filter-skyline (the idea behind LESS / SaLSa): points are first sorted
/// by a monotone scoring function (the sum of coordinates, descending). A
/// point can then only be dominated by points that precede it, so one forward
/// pass with a window suffices and the window never shrinks.
pub fn skyline_sfs(points: &[(RecordId, Point)]) -> Vec<RecordId> {
    let mut sorted: Vec<&(RecordId, Point)> = points.iter().collect();
    sorted.sort_by(|a, b| {
        let sa: f64 = a.1.coords().iter().sum();
        let sb: f64 = b.1.coords().iter().sum();
        sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut window: Vec<(RecordId, &Point)> = Vec::new();
    for (r, p) in sorted {
        let dominated = window.iter().any(|(_, w)| w.dominates(p));
        if !dominated {
            window.push((*r, p));
        }
    }
    window.into_iter().map(|(r, _)| r).collect()
}

/// The k-skyband: all points dominated by at most `k - 1` other points. For
/// `k = 1` this is exactly the skyline. Used by top-k monitoring approaches
/// discussed in the paper's related work and exposed here as a library
/// extension.
pub fn k_skyband(points: &[(RecordId, Point)], k: usize) -> Vec<RecordId> {
    assert!(k >= 1, "k-skyband requires k >= 1");
    let mut out = Vec::new();
    for (i, (r, p)) in points.iter().enumerate() {
        let dominators = points
            .iter()
            .enumerate()
            .filter(|(j, (_, q))| *j != i && q.dominates(p))
            .count();
        if dominators < k {
            out.push(*r);
        }
    }
    out
}

/// Convenience adapter from [`DataEntry`] slices.
pub fn skyline_of_entries(entries: &[DataEntry]) -> Vec<RecordId> {
    let pairs: Vec<(RecordId, Point)> = entries
        .iter()
        .map(|e| (e.record, e.point.clone()))
        .collect();
    skyline_sfs(&pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn pts(raw: &[(u64, [f64; 2])]) -> Vec<(RecordId, Point)> {
        raw.iter()
            .map(|(id, c)| (RecordId(*id), Point::from_slice(c)))
            .collect()
    }

    fn sorted(mut v: Vec<RecordId>) -> Vec<u64> {
        v.sort();
        v.into_iter().map(|r| r.0).collect()
    }

    #[test]
    fn paper_figure1_skyline() {
        // O = {a, b, c, d}: skyline is {a, b, c}; d=(0.4,0.4) is dominated by a.
        let points = pts(&[
            (0, [0.5, 0.6]), // a
            (1, [0.2, 0.7]), // b
            (2, [0.8, 0.2]), // c
            (3, [0.4, 0.4]), // d
        ]);
        for algo in [skyline_naive, skyline_bnl, skyline_sfs] {
            assert_eq!(sorted(algo(&points)), vec![0, 1, 2]);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<(RecordId, Point)> = vec![];
        assert!(skyline_bnl(&empty).is_empty());
        assert!(skyline_sfs(&empty).is_empty());
        assert!(skyline_naive(&empty).is_empty());
        let single = pts(&[(7, [0.3, 0.3])]);
        assert_eq!(sorted(skyline_bnl(&single)), vec![7]);
        assert_eq!(sorted(skyline_sfs(&single)), vec![7]);
    }

    #[test]
    fn duplicate_points_all_survive() {
        let points = pts(&[(0, [0.5, 0.5]), (1, [0.5, 0.5]), (2, [0.1, 0.1])]);
        assert_eq!(sorted(skyline_naive(&points)), vec![0, 1]);
        assert_eq!(sorted(skyline_bnl(&points)), vec![0, 1]);
        assert_eq!(sorted(skyline_sfs(&points)), vec![0, 1]);
    }

    #[test]
    fn totally_ordered_chain_has_single_skyline_point() {
        let points = pts(&[
            (0, [0.1, 0.1]),
            (1, [0.2, 0.2]),
            (2, [0.3, 0.3]),
            (3, [0.9, 0.9]),
        ]);
        for algo in [skyline_naive, skyline_bnl, skyline_sfs] {
            assert_eq!(sorted(algo(&points)), vec![3]);
        }
    }

    #[test]
    fn anti_correlated_diagonal_is_all_skyline() {
        let points: Vec<(RecordId, Point)> = (0..10)
            .map(|i| {
                let x = i as f64 / 10.0;
                (RecordId(i), Point::from_slice(&[x, 0.9 - x]))
            })
            .collect();
        assert_eq!(skyline_naive(&points).len(), 10);
        assert_eq!(skyline_bnl(&points).len(), 10);
        assert_eq!(skyline_sfs(&points).len(), 10);
    }

    #[test]
    fn k_skyband_contains_skyline_and_grows_with_k() {
        let mut rng = StdRng::seed_from_u64(8);
        let points: Vec<(RecordId, Point)> = (0..200)
            .map(|i| {
                (
                    RecordId(i),
                    Point::from_slice(&[rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]),
                )
            })
            .collect();
        let sky = sorted(skyline_naive(&points));
        let band1 = sorted(k_skyband(&points, 1));
        assert_eq!(sky, band1);
        let band3 = k_skyband(&points, 3);
        let band5 = k_skyband(&points, 5);
        assert!(band3.len() >= band1.len());
        assert!(band5.len() >= band3.len());
        // every skyline record is in every band
        for r in &band1 {
            assert!(band3.iter().any(|x| x.0 == *r));
        }
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn k_skyband_rejects_zero() {
        let _ = k_skyband(&[], 0);
    }

    #[test]
    fn skyline_of_entries_adapter() {
        let entries = vec![
            DataEntry::new(RecordId(0), Point::from_slice(&[0.9, 0.1])),
            DataEntry::new(RecordId(1), Point::from_slice(&[0.1, 0.9])),
            DataEntry::new(RecordId(2), Point::from_slice(&[0.05, 0.05])),
        ];
        assert_eq!(sorted(skyline_of_entries(&entries)), vec![0, 1]);
    }

    #[test]
    fn randomized_agreement_between_algorithms() {
        let mut rng = StdRng::seed_from_u64(77);
        for dims in 2..=5 {
            for _ in 0..5 {
                let points: Vec<(RecordId, Point)> = (0..300)
                    .map(|i| {
                        (
                            RecordId(i),
                            Point::from_slice(
                                &(0..dims)
                                    .map(|_| rng.gen_range(0.0..1.0))
                                    .collect::<Vec<_>>(),
                            ),
                        )
                    })
                    .collect();
                let a = sorted(skyline_naive(&points));
                let b = sorted(skyline_bnl(&points));
                let c = sorted(skyline_sfs(&points));
                assert_eq!(a, b);
                assert_eq!(a, c);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn skyline_members_are_never_dominated(
            coords in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 3), 1..60),
        ) {
            let points: Vec<(RecordId, Point)> = coords
                .into_iter()
                .enumerate()
                .map(|(i, c)| (RecordId(i as u64), Point::new(c).unwrap()))
                .collect();
            let sky = skyline_bnl(&points);
            for r in &sky {
                let p = &points.iter().find(|(id, _)| id == r).unwrap().1;
                let dominated = points.iter().any(|(id, q)| id != r && q.dominates(p));
                prop_assert!(!dominated);
            }
            // completeness: every non-member is dominated by someone
            for (r, p) in &points {
                if !sky.contains(r) {
                    let dominated = points.iter().any(|(id, q)| id != r && q.dominates(p));
                    prop_assert!(dominated, "non-skyline member must be dominated");
                }
            }
        }

        #[test]
        fn bnl_and_sfs_agree(
            coords in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 4), 1..80),
        ) {
            let points: Vec<(RecordId, Point)> = coords
                .into_iter()
                .enumerate()
                .map(|(i, c)| (RecordId(i as u64), Point::new(c).unwrap()))
                .collect();
            let mut a = skyline_bnl(&points);
            let mut b = skyline_sfs(&points);
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        }
    }
}
