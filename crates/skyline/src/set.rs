//! The maintained skyline set and its bookkeeping.

use pref_geom::{kernel, Mbr, SoaBlock};
use pref_rtree::{DataEntry, DeleteOutcome, NodeEntry, RecordId};
use pref_storage::{PageId, PeakTracker};

/// A skyline object together with its pruned list.
///
/// During BBS and UpdateSkyline every pruned entry (a dominated R-tree node
/// entry or data object) is attached to exactly one skyline object that
/// dominates it. When that skyline object is later removed (because it was
/// assigned to a preference function), its `plist` is exactly the set of
/// entries that may contain new skyline objects.
#[derive(Debug, Clone)]
pub struct SkylineObject {
    /// The skyline object itself.
    pub data: DataEntry,
    /// Entries pruned by (and therefore "owned" by) this object.
    pub plist: Vec<NodeEntry>,
}

impl SkylineObject {
    /// Creates a skyline object with an empty pruned list.
    pub fn new(data: DataEntry) -> Self {
        Self {
            data,
            plist: Vec::new(),
        }
    }

    /// Approximate size in bytes of this object's bookkeeping (the object
    /// itself plus its pruned list); used for the paper's memory-usage metric.
    pub fn memory_bytes(&self) -> u64 {
        let dims = self.data.point.dims();
        let per_entry = (2 * dims * 8 + 16) as u64;
        per_entry + self.plist.len() as u64 * per_entry
    }
}

/// The current skyline of the remaining objects, with per-object pruned lists.
///
/// Alongside the object vector the skyline maintains a columnar
/// [`SoaBlock`] mirror of the object points (kept index-aligned through
/// every insert and swap-removal), so the dominance pruning scans —
/// [`Skyline::dominates_point`] and [`Skyline::attach_to_dominator`] — run
/// as contiguous-lane kernel scans instead of chasing per-point heap boxes.
#[derive(Debug, Clone, Default)]
pub struct Skyline {
    objects: Vec<SkylineObject>,
    /// Dimension-major mirror of `objects[i].data.point`, same order.
    soa: SoaBlock,
}

impl Skyline {
    /// Creates an empty skyline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of skyline objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when the skyline is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterates over the skyline objects.
    pub fn iter(&self) -> impl Iterator<Item = &SkylineObject> {
        self.objects.iter()
    }

    /// Iterates over the skyline data entries.
    pub fn data_entries(&self) -> impl Iterator<Item = &DataEntry> {
        self.objects.iter().map(|o| &o.data)
    }

    /// Borrowed views of the skyline entries: `(record, &point)` pairs in
    /// skyline order, without cloning any point. The solver hot paths iterate
    /// these views once per loop instead of materializing an owned copy of the
    /// whole point set.
    pub fn entry_views(&self) -> impl Iterator<Item = (RecordId, &pref_geom::Point)> {
        self.data_entries().map(|d| (d.record, &d.point))
    }

    /// Record ids of the skyline objects.
    pub fn records(&self) -> Vec<RecordId> {
        self.objects.iter().map(|o| o.data.record).collect()
    }

    /// `true` iff the record is currently a skyline object.
    pub fn contains(&self, record: RecordId) -> bool {
        self.objects.iter().any(|o| o.data.record == record)
    }

    /// Returns the skyline object for a record.
    pub fn get(&self, record: RecordId) -> Option<&SkylineObject> {
        self.objects.iter().find(|o| o.data.record == record)
    }

    /// Mutable access to a skyline object (used to grow pruned lists).
    pub fn get_mut(&mut self, record: RecordId) -> Option<&mut SkylineObject> {
        self.objects.iter_mut().find(|o| o.data.record == record)
    }

    /// Adds a new skyline object.
    pub fn insert(&mut self, object: SkylineObject) {
        debug_assert!(
            !self.contains(object.data.record),
            "duplicate skyline insertion for {}",
            object.data.record
        );
        self.soa.push_point(&object.data.point);
        self.objects.push(object);
    }

    /// Removes and returns a skyline object (keeping its pruned list intact),
    /// or `None` if the record is not on the skyline.
    pub fn remove(&mut self, record: RecordId) -> Option<SkylineObject> {
        let pos = self.objects.iter().position(|o| o.data.record == record)?;
        self.soa.swap_remove(pos);
        Some(self.objects.swap_remove(pos))
    }

    /// Attaches a pruned entry to the *first* skyline object that dominates
    /// its best corner, if any; returns `true` on success. The paper keeps
    /// each pruned entry in exactly one pruned list to bound memory. The
    /// dominator lookup is a columnar kernel scan over the point mirror; the
    /// first-match semantics (index order) are those of the scalar scan.
    pub fn attach_to_dominator(&mut self, entry: NodeEntry) -> Result<(), NodeEntry> {
        let top = entry.mbr().top_corner();
        match kernel::first_dominator(&self.soa, top.coords()) {
            Some(pos) => {
                self.objects[pos].plist.push(entry);
                Ok(())
            }
            None => Err(entry),
        }
    }

    /// `true` iff some skyline object dominates the given point (a columnar
    /// kernel scan — the skyline pruning hot path).
    pub fn dominates_point(&self, point: &pref_geom::Point) -> bool {
        kernel::first_dominator(&self.soa, point.coords()).is_some()
    }

    /// Repairs the pruned lists after an R-tree node split: if `old_page` is
    /// referenced by some pruned list (i.e. it was pruned but never expanded),
    /// the given entry for the newly created sibling page is appended to the
    /// same list, so the entries that moved to the sibling stay reachable by
    /// later `UpdateSkyline` calls. Returns `true` when a patch was applied.
    ///
    /// Every *pre-existing* record reachable through the old reference was
    /// dominated by the owning skyline object and stays reachable through
    /// `{old, patched}` together. The sibling's MBR may additionally cover
    /// the just-inserted point, whose top corner the owner need not dominate;
    /// that over-coverage is benign — the arrival's authoritative copy is
    /// classified against the skyline at insertion time, and the filtered
    /// resume loop drops duplicate data entries when the page is eventually
    /// expanded.
    pub fn patch_page_split(&mut self, old_page: PageId, new_entry: NodeEntry) -> bool {
        for object in &mut self.objects {
            let referenced = object
                .plist
                .iter()
                .any(|e| matches!(e, NodeEntry::Child { page, .. } if *page == old_page));
            if referenced {
                object.plist.push(new_entry);
                return true;
            }
        }
        false
    }

    /// Removes every pruned-list *data* entry carrying the given record, and
    /// returns how many were removed. Used when a record id is re-issued
    /// after its previous bearer was physically deleted from the R-tree: the
    /// deletion removes the tree copy, but a pruned list may still hold the
    /// predecessor's data entry (with the predecessor's point), which would
    /// otherwise be mis-attributed to the new bearer when it resurfaces.
    pub fn purge_record(&mut self, record: RecordId) -> usize {
        let mut purged = 0usize;
        for object in &mut self.objects {
            object.plist.retain(|e| {
                let stale = matches!(e, NodeEntry::Data(d) if d.record == record);
                purged += usize::from(stale);
                !stale
            });
        }
        purged
    }

    /// `true` iff some pruned list holds a child entry for the given page.
    pub fn references_page(&self, page: PageId) -> bool {
        self.objects
            .iter()
            .any(|o| o.plist.iter().any(|e| e.references_page(page)))
    }

    /// Repairs the pruned lists after a tracked R-tree deletion
    /// ([`pref_rtree::RTree::delete_tracked`]): the counterpart of
    /// [`Skyline::patch_page_split`] for CondenseTree.
    ///
    /// Three repairs are applied, in order:
    ///
    /// 1. every pruned-list reference to a freed page is dropped (the page is
    ///    gone; its id may even be reused by an unrelated node),
    /// 2. pruned-list references to surviving pages whose MBR shrank are
    ///    tightened to the new exact MBR (stale larger MBRs are conservative,
    ///    so this only sharpens later dominance checks),
    /// 3. the freed pages' former contents — the orphaned entries that
    ///    CondenseTree re-inserted elsewhere in the tree — are *re-anchored*:
    ///    each entry is attached to a skyline object that dominates it, or,
    ///    failing that, appended to the first object's pruned list. The
    ///    fallback is sound for the same reason over-coverage is benign in
    ///    [`Skyline::patch_page_split`]: the filtered resume loop re-checks
    ///    dominance when an entry is popped, drops records the caller filters
    ///    out (departed / fully assigned / duplicates), and skips records
    ///    already on the skyline — losing *reachability* is the only
    ///    correctness hazard, and re-anchoring prevents exactly that.
    ///
    /// Entries whose page some pruned list already references are not
    /// re-anchored (they stay reachable through the existing reference), and
    /// neither are entries for pages freed later in the same cascade (their
    /// own contents are re-anchored instead). With an empty skyline there is
    /// nothing to anchor to, and nothing is needed: no pruned lists exist, so
    /// no record relies on pruned-list reachability.
    ///
    /// The re-insertion node splits reported by the same [`DeleteOutcome`]
    /// must afterwards be patched via [`Skyline::patch_page_split`]; use
    /// [`Skyline::patch_page_delete`] to apply the full report in order.
    ///
    /// Returns the number of dropped page references.
    pub fn patch_pages_freed(
        &mut self,
        freed_pages: &[PageId],
        reanchor: Vec<NodeEntry>,
        shrinks: &[(PageId, Mbr)],
    ) -> usize {
        let mut dropped = 0usize;
        for object in &mut self.objects {
            object.plist.retain(|e| {
                let stale = freed_pages.iter().any(|p| e.references_page(*p));
                dropped += usize::from(stale);
                !stale
            });
            for e in &mut object.plist {
                if let NodeEntry::Child { page, mbr } = e {
                    if let Some((_, tight)) = shrinks.iter().find(|(p, _)| p == page) {
                        *mbr = tight.clone();
                    }
                }
            }
        }
        for entry in reanchor {
            match &entry {
                NodeEntry::Child { page, .. } => {
                    if freed_pages.contains(page) || self.references_page(*page) {
                        continue;
                    }
                }
                NodeEntry::Data(d) => {
                    // a skyline object's own (relocated) tree copy needs no
                    // pruned-list anchor; the resume loop skips it anyway
                    if self.contains(d.record) {
                        continue;
                    }
                }
            }
            if let Err(entry) = self.attach_to_dominator(entry) {
                if let Some(first) = self.objects.first_mut() {
                    first.plist.push(entry);
                }
            }
        }
        dropped
    }

    /// Applies a full [`DeleteOutcome`] — freed-page reference drops, orphan
    /// re-anchoring, MBR tightening, then the re-insertion splits — keeping
    /// the pruned lists consistent across one physical R-tree deletion.
    ///
    /// Returns the number of dropped page references.
    pub fn patch_page_delete(&mut self, outcome: &DeleteOutcome) -> usize {
        let freed_pages: Vec<PageId> = outcome.freed.iter().map(|f| f.page).collect();
        let reanchor: Vec<NodeEntry> = outcome
            .freed
            .iter()
            .flat_map(|f| f.contents.iter().cloned())
            .collect();
        let dropped = self.patch_pages_freed(&freed_pages, reanchor, &outcome.shrinks);
        for split in &outcome.splits {
            self.patch_page_split(
                split.old_page,
                NodeEntry::Child {
                    mbr: split.new_mbr.clone(),
                    page: split.new_page,
                },
            );
        }
        dropped
    }

    /// Total approximate memory of the skyline and all pruned lists, in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.objects.iter().map(SkylineObject::memory_bytes).sum()
    }

    /// Records the current memory footprint into a [`PeakTracker`].
    pub fn observe_memory(&self, tracker: &mut PeakTracker) {
        tracker.observe(self.memory_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pref_geom::{Mbr, Point};
    use pref_storage::PageId;

    fn data(id: u64, coords: &[f64]) -> DataEntry {
        DataEntry::new(RecordId(id), Point::from_slice(coords))
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Skyline::new();
        assert!(s.is_empty());
        s.insert(SkylineObject::new(data(1, &[0.9, 0.2])));
        s.insert(SkylineObject::new(data(2, &[0.2, 0.9])));
        assert_eq!(s.len(), 2);
        assert!(s.contains(RecordId(1)));
        assert!(!s.contains(RecordId(3)));
        assert_eq!(s.records().len(), 2);
        let removed = s.remove(RecordId(1)).unwrap();
        assert_eq!(removed.data.record, RecordId(1));
        assert!(!s.contains(RecordId(1)));
        assert!(s.remove(RecordId(1)).is_none());
    }

    #[test]
    fn attach_to_dominator_prefers_existing_objects() {
        let mut s = Skyline::new();
        s.insert(SkylineObject::new(data(1, &[0.9, 0.8])));
        // a dominated data entry
        let pruned = NodeEntry::Data(data(5, &[0.5, 0.5]));
        assert!(s.attach_to_dominator(pruned).is_ok());
        assert_eq!(s.get(RecordId(1)).unwrap().plist.len(), 1);
        // a non-dominated entry comes back
        let free = NodeEntry::Data(data(6, &[0.95, 0.1]));
        assert!(s.attach_to_dominator(free).is_err());
    }

    #[test]
    fn attach_subtree_entries_by_top_corner() {
        let mut s = Skyline::new();
        s.insert(SkylineObject::new(data(1, &[0.9, 0.9])));
        let covered = NodeEntry::Child {
            mbr: Mbr::new(vec![0.1, 0.1], vec![0.5, 0.5]).unwrap(),
            page: PageId::new(3),
        };
        assert!(s.attach_to_dominator(covered).is_ok());
        let escaping = NodeEntry::Child {
            mbr: Mbr::new(vec![0.1, 0.1], vec![0.95, 0.5]).unwrap(),
            page: PageId::new(4),
        };
        assert!(s.attach_to_dominator(escaping).is_err());
    }

    #[test]
    fn dominates_point_checks_all_objects() {
        let mut s = Skyline::new();
        s.insert(SkylineObject::new(data(1, &[0.9, 0.2])));
        s.insert(SkylineObject::new(data(2, &[0.2, 0.9])));
        assert!(s.dominates_point(&Point::from_slice(&[0.1, 0.1])));
        assert!(!s.dominates_point(&Point::from_slice(&[0.5, 0.5])));
    }

    #[test]
    fn patch_pages_freed_drops_refs_tightens_and_reanchors() {
        let mut s = Skyline::new();
        s.insert(SkylineObject::new(data(1, &[0.9, 0.9])));
        s.insert(SkylineObject::new(data(2, &[0.95, 0.1])));
        // two pruned page references and a pruned data entry
        let freed = PageId::new(3);
        let kept = PageId::new(4);
        s.attach_to_dominator(NodeEntry::Child {
            mbr: Mbr::new(vec![0.1, 0.1], vec![0.5, 0.5]).unwrap(),
            page: freed,
        })
        .unwrap();
        s.attach_to_dominator(NodeEntry::Child {
            mbr: Mbr::new(vec![0.1, 0.1], vec![0.6, 0.6]).unwrap(),
            page: kept,
        })
        .unwrap();
        assert!(s.references_page(freed));
        // the freed page's contents: a dominated data entry, a dominated
        // subtree, and an entry nobody dominates (force-anchored)
        let orphan_data = NodeEntry::Data(data(7, &[0.4, 0.4]));
        let orphan_child = NodeEntry::Child {
            mbr: Mbr::new(vec![0.2, 0.2], vec![0.3, 0.3]).unwrap(),
            page: PageId::new(9),
        };
        let escaping = NodeEntry::Child {
            mbr: Mbr::new(vec![0.0, 0.0], vec![0.99, 0.99]).unwrap(),
            page: PageId::new(10),
        };
        let tight = Mbr::new(vec![0.1, 0.1], vec![0.55, 0.55]).unwrap();
        let dropped = s.patch_pages_freed(
            &[freed],
            vec![orphan_data, orphan_child, escaping],
            &[(kept, tight.clone())],
        );
        assert_eq!(dropped, 1);
        assert!(!s.references_page(freed));
        // the surviving reference was tightened
        let holder = s.get(RecordId(1)).unwrap();
        assert!(holder
            .plist
            .iter()
            .any(|e| e.references_page(kept) && e.mbr() == tight));
        // all three orphans are reachable again
        assert!(s.references_page(PageId::new(9)));
        assert!(s.references_page(PageId::new(10)));
        let total_plist: usize = s.iter().map(|o| o.plist.len()).sum();
        assert_eq!(total_plist, 4, "kept + data + subtree + forced");
    }

    #[test]
    fn patch_pages_freed_skips_already_referenced_and_cascaded_pages() {
        let mut s = Skyline::new();
        s.insert(SkylineObject::new(data(1, &[0.9, 0.9])));
        let live = PageId::new(5);
        s.attach_to_dominator(NodeEntry::Child {
            mbr: Mbr::new(vec![0.1, 0.1], vec![0.5, 0.5]).unwrap(),
            page: live,
        })
        .unwrap();
        // a cascade: page 6 freed, its contents point at page 5 (already
        // referenced) and at page 7 (itself freed later in the cascade)
        let dropped = s.patch_pages_freed(
            &[PageId::new(6), PageId::new(7)],
            vec![
                NodeEntry::Child {
                    mbr: Mbr::new(vec![0.1, 0.1], vec![0.5, 0.5]).unwrap(),
                    page: live,
                },
                NodeEntry::Child {
                    mbr: Mbr::new(vec![0.1, 0.1], vec![0.4, 0.4]).unwrap(),
                    page: PageId::new(7),
                },
            ],
            &[],
        );
        assert_eq!(dropped, 0);
        assert_eq!(s.get(RecordId(1)).unwrap().plist.len(), 1);
        assert!(!s.references_page(PageId::new(7)));
    }

    #[test]
    fn purge_record_drops_only_that_records_data_entries() {
        let mut s = Skyline::new();
        s.insert(SkylineObject::new(data(1, &[0.9, 0.9])));
        s.attach_to_dominator(NodeEntry::Data(data(5, &[0.5, 0.5])))
            .unwrap();
        s.attach_to_dominator(NodeEntry::Data(data(6, &[0.4, 0.4])))
            .unwrap();
        s.attach_to_dominator(NodeEntry::Child {
            mbr: Mbr::new(vec![0.1, 0.1], vec![0.2, 0.2]).unwrap(),
            page: PageId::new(5), // same raw id as record 5: must be kept
        })
        .unwrap();
        assert_eq!(s.purge_record(RecordId(5)), 1);
        assert_eq!(s.purge_record(RecordId(5)), 0);
        let plist = &s.get(RecordId(1)).unwrap().plist;
        assert_eq!(plist.len(), 2);
        assert!(plist.iter().any(|e| e.references_page(PageId::new(5))));
    }

    #[test]
    fn patch_pages_freed_on_empty_skyline_is_a_noop() {
        let mut s = Skyline::new();
        let dropped = s.patch_pages_freed(
            &[PageId::new(1)],
            vec![NodeEntry::Data(data(3, &[0.5, 0.5]))],
            &[],
        );
        assert_eq!(dropped, 0);
        assert!(s.is_empty());
    }

    #[test]
    fn columnar_mirror_stays_aligned_through_swap_removals() {
        // `remove` swap-removes from the middle; the SoA mirror must follow
        // the exact same permutation or dominance answers drift.
        let mut s = Skyline::new();
        s.insert(SkylineObject::new(data(1, &[0.9, 0.1])));
        s.insert(SkylineObject::new(data(2, &[0.5, 0.5])));
        s.insert(SkylineObject::new(data(3, &[0.1, 0.9])));
        assert!(s.dominates_point(&Point::from_slice(&[0.4, 0.4])));
        s.remove(RecordId(2)).unwrap(); // swap-removes: 3 moves to index 1
        assert!(!s.dominates_point(&Point::from_slice(&[0.4, 0.4])));
        assert!(s.dominates_point(&Point::from_slice(&[0.8, 0.05])));
        assert!(s.dominates_point(&Point::from_slice(&[0.05, 0.8])));
        // attach lands on the relocated object (index order = scalar scan)
        s.attach_to_dominator(NodeEntry::Data(data(9, &[0.05, 0.8])))
            .unwrap();
        assert_eq!(s.get(RecordId(3)).unwrap().plist.len(), 1);
        s.remove(RecordId(1)).unwrap();
        s.remove(RecordId(3)).unwrap();
        assert!(!s.dominates_point(&Point::from_slice(&[0.0, 0.0])));
    }

    #[test]
    fn memory_grows_with_plists() {
        let mut s = Skyline::new();
        s.insert(SkylineObject::new(data(1, &[0.9, 0.9])));
        let before = s.memory_bytes();
        s.attach_to_dominator(NodeEntry::Data(data(5, &[0.5, 0.5])))
            .unwrap();
        assert!(s.memory_bytes() > before);
        let mut tracker = PeakTracker::new();
        s.observe_memory(&mut tracker);
        assert_eq!(tracker.peak(), s.memory_bytes());
    }
}
