//! UpdateSkyline — the paper's I/O-optimal incremental maintenance module
//! (Algorithm 2).

use crate::bbs::{resume_skyline_filtered, HeapEntry};
use crate::set::{Skyline, SkylineObject};
use pref_rtree::{RTree, RecordId};
use std::collections::BinaryHeap;

/// Incrementally maintains the skyline after one or more skyline objects have
/// been removed (assigned to preference functions).
///
/// `removed` are the [`SkylineObject`]s that were just taken off `skyline`
/// (via [`Skyline::remove`]), still carrying their pruned lists. For every
/// pruned entry the algorithm first tries to hand it over to a remaining
/// skyline object that dominates it; the entries that no remaining object
/// dominates form the candidate set `Scand`, which is processed by the shared
/// `ResumeSkyline` loop in ascending distance from the sky point.
///
/// I/O-optimality (Theorem 1): only entries exclusively dominated by the
/// removed objects are examined, and because every expanded node disappears
/// from both the candidate heap and every pruned list, no R-tree node is read
/// twice across the whole sequence of maintenance calls.
pub fn update_skyline(tree: &mut RTree, skyline: &mut Skyline, removed: Vec<SkylineObject>) {
    update_skyline_filtered(tree, skyline, removed, &|_| false);
}

/// [`update_skyline`] with a drop filter: data entries for which `drop`
/// returns `true` never (re-)enter the skyline or a pruned list.
///
/// The long-lived assignment engine maintains the skyline of its *free pool*
/// over a dynamically updated R-tree, where the candidate stream can carry
/// records that must stay out of the pool: objects that departed the problem,
/// objects whose capacity is fully assigned, and the duplicate tree-resident
/// copies of objects the engine already tracks in memory. Batch SB keeps
/// using the unfiltered wrapper — its candidate stream visits every entry
/// exactly once (Theorem 1), so no filter is needed there.
pub fn update_skyline_filtered(
    tree: &mut RTree,
    skyline: &mut Skyline,
    removed: Vec<SkylineObject>,
    drop: &dyn Fn(RecordId) -> bool,
) {
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
    for object in removed {
        for entry in object.plist {
            if let Some(data) = entry.as_data() {
                if drop(data.record) || skyline.contains(data.record) {
                    continue;
                }
            }
            match skyline.attach_to_dominator(entry) {
                Ok(()) => {}
                Err(entry) => heap.push(HeapEntry::new(entry)),
            }
        }
    }
    resume_skyline_filtered(tree, skyline, &mut heap, drop);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbs::compute_skyline_bbs;
    use crate::memory::skyline_naive;
    use pref_geom::Point;
    use pref_rtree::{RTreeConfig, RecordId};
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use std::collections::HashSet;

    fn random_points(n: u64, dims: usize, seed: u64) -> Vec<(RecordId, Point)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    RecordId(i),
                    Point::from_slice(
                        &(0..dims)
                            .map(|_| rng.gen_range(0.0..1.0))
                            .collect::<Vec<_>>(),
                    ),
                )
            })
            .collect()
    }

    fn anti_correlated(n: u64, dims: usize, seed: u64) -> Vec<(RecordId, Point)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let mut c: Vec<f64> = (0..dims).map(|_| rng.gen_range(0.0..1.0)).collect();
                // push points towards the anti-diagonal plane sum ~= dims/2
                let sum: f64 = c.iter().sum();
                let target = dims as f64 / 2.0;
                let shift = (target - sum) / dims as f64 * 0.8;
                for v in &mut c {
                    *v = (*v + shift).clamp(0.0, 1.0);
                }
                (RecordId(i), Point::from_slice(&c))
            })
            .collect()
    }

    fn build(points: &[(RecordId, Point)], fanout: usize) -> RTree {
        let dims = points[0].1.dims();
        RTree::bulk_load(
            RTreeConfig::for_dims(dims).with_fanout(fanout),
            points.to_vec(),
        )
        .unwrap()
    }

    /// Removes skyline objects one by one (in a deterministic order) and checks
    /// after each removal that the maintained skyline equals the skyline of the
    /// remaining points computed from scratch by the naive oracle.
    fn check_incremental_maintenance(
        points: Vec<(RecordId, Point)>,
        fanout: usize,
        removals: usize,
    ) {
        let mut tree = build(&points, fanout);
        let mut sky = compute_skyline_bbs(&mut tree);
        let mut remaining: Vec<(RecordId, Point)> = points.clone();
        for step in 0..removals {
            if sky.is_empty() {
                break;
            }
            // remove the skyline object with the smallest record id (deterministic)
            let victim = *sky.records().iter().min().unwrap();
            let obj = sky.remove(victim).unwrap();
            remaining.retain(|(r, _)| *r != victim);
            update_skyline(&mut tree, &mut sky, vec![obj]);
            let mut got: Vec<u64> = sky.records().iter().map(|r| r.0).collect();
            got.sort_unstable();
            let mut want: Vec<u64> = skyline_naive(&remaining).iter().map(|r| r.0).collect();
            want.sort_unstable();
            assert_eq!(got, want, "divergence after removal #{step} of {victim:?}");
        }
    }

    #[test]
    fn figure4_example_update() {
        // Figure 4: after assigning e (the top object), the skyline becomes {a, c, d, i}.
        // We reproduce the shape with concrete coordinates.
        let points = vec![
            (RecordId(0), Point::from_slice(&[0.15, 0.95])),  // a
            (RecordId(2), Point::from_slice(&[0.45, 0.80])),  // c
            (RecordId(3), Point::from_slice(&[0.55, 0.75])),  // d
            (RecordId(4), Point::from_slice(&[0.70, 0.85])),  // e  (initial skyline with a)
            (RecordId(8), Point::from_slice(&[0.65, 0.40])),  // i
            (RecordId(6), Point::from_slice(&[0.30, 0.70])),  // g dominated
            (RecordId(7), Point::from_slice(&[0.10, 0.60])),  // h dominated
            (RecordId(10), Point::from_slice(&[0.50, 0.30])), // k dominated
        ];
        let mut tree = build(&points, 4);
        let mut sky = compute_skyline_bbs(&mut tree);
        let mut initial: Vec<u64> = sky.records().iter().map(|r| r.0).collect();
        initial.sort_unstable();
        assert_eq!(initial, vec![0, 4]);
        let e = sky.remove(RecordId(4)).unwrap();
        update_skyline(&mut tree, &mut sky, vec![e]);
        let mut updated: Vec<u64> = sky.records().iter().map(|r| r.0).collect();
        updated.sort_unstable();
        assert_eq!(updated, vec![0, 2, 3, 8]);
    }

    #[test]
    fn incremental_maintenance_matches_oracle_uniform() {
        check_incremental_maintenance(random_points(300, 2, 21), 8, 40);
        check_incremental_maintenance(random_points(300, 3, 22), 8, 30);
        check_incremental_maintenance(random_points(200, 4, 23), 8, 20);
    }

    #[test]
    fn incremental_maintenance_matches_oracle_anti_correlated() {
        check_incremental_maintenance(anti_correlated(300, 2, 31), 8, 50);
        check_incremental_maintenance(anti_correlated(250, 3, 32), 8, 30);
    }

    #[test]
    fn batched_removals_match_oracle() {
        // remove several skyline objects in one UpdateSkyline call (multiple
        // stable pairs per loop)
        let points = random_points(400, 3, 41);
        let mut tree = build(&points, 12);
        let mut sky = compute_skyline_bbs(&mut tree);
        let mut remaining = points.clone();
        for _ in 0..10 {
            if sky.len() < 2 {
                break;
            }
            let mut victims: Vec<RecordId> = sky.records();
            victims.sort();
            victims.truncate(3.min(victims.len()));
            let removed: Vec<_> = victims
                .iter()
                .map(|r| {
                    remaining.retain(|(id, _)| id != r);
                    sky.remove(*r).unwrap()
                })
                .collect();
            update_skyline(&mut tree, &mut sky, removed);
            let mut got: Vec<u64> = sky.records().iter().map(|r| r.0).collect();
            got.sort_unstable();
            let mut want: Vec<u64> = skyline_naive(&remaining).iter().map(|r| r.0).collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn no_node_is_read_twice_across_whole_run() {
        // Theorem 1: collect the multiset of node accesses over the initial
        // BBS plus every maintenance call; no page may be accessed twice.
        // We verify via the I/O counters: with no buffer, physical reads equal
        // logical reads; their total must not exceed the number of pages.
        let points = anti_correlated(800, 3, 55);
        let mut tree = build(&points, 16);
        tree.set_buffer_frames(0);
        tree.reset_stats();
        let mut sky = compute_skyline_bbs(&mut tree);
        let mut total_removed = 0;
        while !sky.is_empty() && total_removed < 400 {
            let victim = *sky.records().iter().min().unwrap();
            let obj = sky.remove(victim).unwrap();
            update_skyline(&mut tree, &mut sky, vec![obj]);
            total_removed += 1;
        }
        let reads = tree.stats().logical_reads;
        assert!(
            reads <= tree.num_pages() as u64,
            "UpdateSkyline read {reads} nodes but the tree only has {} pages",
            tree.num_pages()
        );
    }

    /// The tentpole soundness property for physical deletion: a maintained
    /// skyline driven through arbitrary churn — dynamic arrivals
    /// (`insert_tracked` + `patch_page_split` + `insert_skyline`), physical
    /// departures (`delete_tracked` + `patch_page_delete`), and skyline
    /// replenishment (`update_skyline_filtered`) — must equal the naive
    /// skyline of the live population after every single operation.
    fn check_churn_consistency(dims: usize, fanout: usize, steps: usize, seed: u64) {
        use crate::insert::insert_skyline;
        use pref_rtree::{DataEntry, NodeEntry};

        let mut rng = StdRng::seed_from_u64(seed);
        let initial = random_points(200, dims, seed ^ 0xc0de);
        let mut tree = build(&initial, fanout);
        let mut sky = compute_skyline_bbs(&mut tree);
        let mut live: Vec<(RecordId, Point)> = initial;
        let mut deleted: HashSet<RecordId> = HashSet::new();
        let mut next_id = 200u64;

        for step in 0..steps {
            if live.len() < 20 || rng.gen_bool(0.5) {
                // arrival
                let p = Point::from_slice(
                    &(0..dims)
                        .map(|_| rng.gen_range(0.0..1.0))
                        .collect::<Vec<_>>(),
                );
                let id = RecordId(next_id);
                next_id += 1;
                let splits = tree.insert_tracked(id, p.clone()).unwrap();
                for s in &splits {
                    sky.patch_page_split(
                        s.old_page,
                        NodeEntry::Child {
                            mbr: s.new_mbr.clone(),
                            page: s.new_page,
                        },
                    );
                }
                insert_skyline(&mut sky, DataEntry::new(id, p.clone()));
                live.push((id, p));
            } else {
                // physical departure of an arbitrary live record
                let idx = rng.gen_range(0..live.len());
                let (id, p) = live.swap_remove(idx);
                deleted.insert(id);
                if let Some(obj) = sky.remove(id) {
                    // replenish first (the departed record's tree copy is
                    // still present; the drop filter hides it), then delete
                    let drop = |r: RecordId| deleted.contains(&r);
                    update_skyline_filtered(&mut tree, &mut sky, vec![obj], &drop);
                }
                let outcome = tree.delete_tracked(id, &p).unwrap();
                sky.patch_page_delete(&outcome);
            }
            let mut got: Vec<u64> = sky.records().iter().map(|r| r.0).collect();
            got.sort_unstable();
            let mut want: Vec<u64> = skyline_naive(&live).iter().map(|r| r.0).collect();
            want.sort_unstable();
            assert_eq!(got, want, "divergence at step {step} (seed {seed})");
        }
        tree.check_invariants().unwrap();
    }

    #[test]
    fn churn_with_physical_deletion_matches_oracle_2d() {
        check_churn_consistency(2, 4, 600, 101);
        check_churn_consistency(2, 8, 400, 102);
    }

    #[test]
    fn churn_with_physical_deletion_matches_oracle_3d() {
        check_churn_consistency(3, 4, 500, 201);
        check_churn_consistency(3, 6, 400, 202);
    }

    #[test]
    fn churn_with_physical_deletion_matches_oracle_anti_correlated_seeds() {
        // anti-correlated initial sets have large skylines and heavy pruned
        // lists, the worst case for re-anchoring
        for seed in [301u64, 302, 303] {
            check_churn_consistency(3, 5, 350, seed);
        }
    }

    /// Physical deletion plus assignment-style removals: skyline objects are
    /// consumed (removed + replenished) while non-skyline records are being
    /// physically deleted underneath the pruned lists.
    #[test]
    fn interleaved_assignment_and_physical_deletion_match_oracle() {
        let points = anti_correlated(400, 3, 41);
        let mut tree = build(&points, 6);
        let mut sky = compute_skyline_bbs(&mut tree);
        let mut live = points;
        let mut gone: HashSet<RecordId> = HashSet::new();
        let mut rng = StdRng::seed_from_u64(77);
        for step in 0..200 {
            if live.is_empty() {
                break;
            }
            if step % 3 == 0 && !sky.is_empty() {
                // "assign" the smallest skyline object (leaves the tree!)
                let victim = *sky.records().iter().min().unwrap();
                let obj = sky.remove(victim).unwrap();
                gone.insert(victim);
                live.retain(|(r, _)| *r != victim);
                let drop = |r: RecordId| gone.contains(&r);
                update_skyline_filtered(&mut tree, &mut sky, vec![obj], &drop);
            } else {
                // physically delete an arbitrary live record
                let idx = rng.gen_range(0..live.len());
                let (id, p) = live.swap_remove(idx);
                gone.insert(id);
                if let Some(obj) = sky.remove(id) {
                    let drop = |r: RecordId| gone.contains(&r);
                    update_skyline_filtered(&mut tree, &mut sky, vec![obj], &drop);
                }
                let outcome = tree.delete_tracked(id, &p).unwrap();
                sky.patch_page_delete(&outcome);
            }
            let mut got: Vec<u64> = sky.records().iter().map(|r| r.0).collect();
            got.sort_unstable();
            let mut want: Vec<u64> = skyline_naive(&live).iter().map(|r| r.0).collect();
            want.sort_unstable();
            assert_eq!(got, want, "divergence at step {step}");
        }
    }

    #[test]
    fn removed_objects_never_reappear() {
        let points = random_points(500, 3, 61);
        let mut tree = build(&points, 12);
        let mut sky = compute_skyline_bbs(&mut tree);
        let mut removed_ids: HashSet<u64> = HashSet::new();
        for _ in 0..100 {
            if sky.is_empty() {
                break;
            }
            let victim = *sky.records().iter().min().unwrap();
            removed_ids.insert(victim.0);
            let obj = sky.remove(victim).unwrap();
            update_skyline(&mut tree, &mut sky, vec![obj]);
            for r in sky.records() {
                assert!(!removed_ids.contains(&r.0), "{r} reappeared after removal");
            }
        }
    }
}
