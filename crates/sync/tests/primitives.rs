//! Passthrough-equivalence smoke test: outside a model run the shim types
//! behave exactly like std on real OS threads — same API, same semantics —
//! whether or not the `model` feature is compiled in. This is what keeps the
//! service's hot path (and `BENCH_service.json`) unaffected by the shim.

use pref_sync::{thread, AtomicU64, Condvar, Mutex, Ordering, RaceCell};
use std::sync::Arc;

#[test]
fn atomics_on_real_threads() {
    let counter = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let counter = Arc::clone(&counter);
            thread::spawn(move || {
                for _ in 0..1_000 {
                    // ordering: plain counter, nothing published through it
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // ordering: joins above ordered every increment before this read
    assert_eq!(counter.load(Ordering::Relaxed), 4_000);
}

#[test]
fn store_load_roundtrip_and_fetch_sub() {
    let a = AtomicU64::new(10);
    // ordering: single-threaded round-trip
    a.store(7, Ordering::Release);
    // ordering: single-threaded round-trip
    assert_eq!(a.load(Ordering::Acquire), 7);
    // ordering: single-threaded round-trip
    assert_eq!(a.fetch_sub(3, Ordering::AcqRel), 7);
    // ordering: single-threaded round-trip
    assert_eq!(a.load(Ordering::Relaxed), 4);
}

#[test]
fn mutex_guards_exclusive_access() {
    let total = Arc::new(Mutex::new(0u64));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let total = Arc::clone(&total);
            thread::spawn(move || {
                for _ in 0..500 {
                    *total.lock() += 1;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*total.lock(), 2_000);
}

#[test]
fn mutex_lock_recovers_from_poison() {
    let cell = Arc::new(Mutex::new(41u64));
    let poisoner = Arc::clone(&cell);
    let result = thread::spawn(move || {
        let _guard = poisoner.lock();
        panic!("poison the lock");
    })
    .join();
    assert!(result.is_err());
    // std would return Err(PoisonError); the shim recovers the data
    *cell.lock() += 1;
    assert_eq!(*cell.lock(), 42);
}

#[test]
fn condvar_wakes_real_threads() {
    let slot = Arc::new((Mutex::new(None::<u64>), Condvar::new()));
    let producer = {
        let slot = Arc::clone(&slot);
        thread::spawn(move || {
            *slot.0.lock() = Some(13);
            slot.1.notify_all();
        })
    };
    let mut guard = slot.0.lock();
    while guard.is_none() {
        guard = slot.1.wait(guard);
    }
    assert_eq!(*guard, Some(13));
    drop(guard);
    producer.join().unwrap();
}

#[test]
fn race_cell_is_a_plain_cell_outside_runs() {
    let cell = RaceCell::new(vec![1u64, 2, 3]);
    assert_eq!(cell.get(), vec![1, 2, 3]);
    cell.set(vec![4]);
    assert_eq!(cell.get(), vec![4]);
}

#[test]
fn named_builder_spawns_and_returns_values() {
    let handle = thread::Builder::new()
        .name("smoke-worker".to_string())
        .spawn(|| 6 * 7)
        .unwrap();
    assert_eq!(handle.join().unwrap(), 42);
    thread::yield_now();
}
