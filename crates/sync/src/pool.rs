//! A hand-rolled work-stealing thread pool over the shim primitives.
//!
//! The pool exists for the *batch phases* of the solvers and the assignment
//! engine: the per-loop reciprocal-pair search scores every candidate
//! function against every skyline object, and that embarrassingly parallel
//! scan is partitioned into jobs executed by a fixed set of worker threads.
//!
//! Design, in one paragraph: each worker owns a deque; jobs are pushed
//! round-robin across the deques; a worker pops from the *front* of its own
//! deque and, when empty, steals from the *back* of a victim's. Admission is
//! mediated by a single gate (`queued` counter + condvar) with a reservation
//! protocol — jobs are pushed *before* the counter is raised, and a woken
//! worker *decrements first, then searches*, so an outstanding reservation
//! always finds a job somewhere (pushed − taken ≥ reserved − taken ≥ 1) and
//! the steal-search loop terminates without the gate having to know which
//! deque holds what.
//!
//! Two properties matter more than raw throughput here:
//!
//! * **Determinism of results.** [`WorkStealingPool::run`] returns results in
//!   *submission order* no matter which worker ran what when; callers that
//!   partition work deterministically and merge by slot index get answers
//!   that are byte-identical at any thread count.
//! * **Model-checkability.** The pool is built exclusively from the crate's
//!   shim [`Mutex`]/[`Condvar`]/[`thread`] types, so under the `model`
//!   feature every lock, wait, and yield is a schedule point and
//!   `model::explore` can drive the pool through adversarial interleavings.
//!   Solver-level code must therefore size pools with [`resolve_threads`],
//!   which pins the width to 1 in model-capable builds — a model run only
//!   explores threads it spawned itself, and implicit inner pools would
//!   dilute the scenario under test. Tests that *want* to explore the pool
//!   construct one explicitly with [`WorkStealingPool::with_threads`].
//!
//! Worker panics do not strand the caller: a drop guard marks the job
//! complete even on unwind, and the missing result is reported as a panic in
//! [`WorkStealingPool::run`] on the submitting thread.

use crate::{thread, Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Admission state: jobs pushed but not yet reserved by a worker, plus the
/// shutdown flag. Guarded by one mutex so "reserve a unit" is atomic.
struct Gate {
    queued: usize,
    stop: bool,
}

struct Shared {
    /// One deque per worker; owner pops the front, thieves pop the back.
    queues: Vec<Mutex<VecDeque<Job>>>,
    gate: Mutex<Gate>,
    work_ready: Condvar,
}

/// Per-batch completion tracking for [`WorkStealingPool::run`].
struct Batch {
    remaining: Mutex<usize>,
    done: Condvar,
}

/// Decrements the batch counter on drop — including panic unwinds — so a
/// panicking job can never leave the submitting thread waiting forever.
struct CompletionGuard<'a> {
    batch: &'a Batch,
}

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        let mut remaining = self.batch.remaining.lock();
        *remaining -= 1;
        if *remaining == 0 {
            self.batch.done.notify_all();
        }
    }
}

/// A fixed-width work-stealing thread pool. See the module docs for the
/// design; see [`resolve_threads`] for how solver code should size it.
pub struct WorkStealingPool {
    shared: Arc<Shared>,
    handles: Vec<thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkStealingPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkStealingPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkStealingPool {
    /// Spawns a pool with exactly `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            gate: Mutex::new(Gate {
                queued: 0,
                stop: false,
            }),
            work_ready: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("pref-pool-{index}"))
                    .spawn(move || worker_loop(index, &shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            shared,
            handles,
            threads,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes every job on the pool and returns the results **in
    /// submission order** (slot `i` holds the result of `jobs[i]`), blocking
    /// the calling thread until the whole batch has completed.
    ///
    /// # Panics
    /// Panics if any job panicked on a worker (the batch still drains, so the
    /// pool is not poisoned for later calls from other threads).
    pub fn run<R, F>(&self, jobs: Vec<F>) -> Vec<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let results: Arc<Mutex<Vec<Option<R>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let batch = Arc::new(Batch {
            remaining: Mutex::new(n),
            done: Condvar::new(),
        });
        for (slot, job) in jobs.into_iter().enumerate() {
            let results = Arc::clone(&results);
            let batch = Arc::clone(&batch);
            let wrapped: Job = Box::new(move || {
                let guard = CompletionGuard { batch: &batch };
                let value = job();
                results.lock()[slot] = Some(value);
                drop(guard);
            });
            // Push BEFORE raising `queued` (the reservation invariant).
            self.shared.queues[slot % self.threads]
                .lock()
                .push_back(wrapped);
        }
        {
            let mut gate = self.shared.gate.lock();
            gate.queued += n;
        }
        self.shared.work_ready.notify_all();
        {
            let mut remaining = batch.remaining.lock();
            while *remaining > 0 {
                remaining = batch.done.wait(remaining);
            }
        }
        let mut slots = results.lock();
        slots
            .iter_mut()
            .map(|slot| slot.take().expect("a pool job panicked on a worker"))
            .collect()
    }
}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        {
            let mut gate = self.shared.gate.lock();
            gate.stop = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(index: usize, shared: &Shared) {
    loop {
        // Reserve one unit of work (or exit once stopped and drained).
        {
            let mut gate = shared.gate.lock();
            loop {
                if gate.queued > 0 {
                    gate.queued -= 1;
                    break;
                }
                if gate.stop {
                    return;
                }
                gate = shared.work_ready.wait(gate);
            }
        }
        let job = find_job(index, shared);
        job();
    }
}

/// Locates the job backing an outstanding reservation: own deque front first,
/// then every victim's back. The reservation invariant guarantees a job is in
/// *some* deque, so the retry loop terminates; the yield keeps the retry from
/// monopolizing a core (and is a schedule point under the model).
fn find_job(index: usize, shared: &Shared) -> Job {
    let width = shared.queues.len();
    loop {
        if let Some(job) = shared.queues[index].lock().pop_front() {
            return job;
        }
        for offset in 1..width {
            let victim = (index + offset) % width;
            if let Some(job) = shared.queues[victim].lock().pop_back() {
                return job;
            }
        }
        thread::yield_now();
    }
}

/// Resolves the worker count for solver/engine-level pools.
///
/// Order of precedence: model-capable builds are pinned to 1 (implicit inner
/// pools would pollute model scenarios — see the module docs); an explicit
/// option wins next; then the `PREF_THREADS` environment variable; finally
/// the machine's available parallelism, capped at 8 (the batch phases stop
/// scaling well past the paper-scale working sets).
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if crate::MODEL_CAPABLE {
        return 1;
    }
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Ok(raw) = std::env::var("PREF_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        for threads in [1, 2, 4, 8] {
            let pool = WorkStealingPool::with_threads(threads);
            let jobs: Vec<_> = (0..64_u64).map(|i| move || i * i).collect();
            let got = pool.run(jobs);
            let want: Vec<u64> = (0..64).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkStealingPool::with_threads(3);
        for round in 0..10_u64 {
            let jobs: Vec<_> = (0..7_u64).map(|i| move || round * 100 + i).collect();
            let got = pool.run(jobs);
            assert_eq!(got.len(), 7);
            assert_eq!(got[3], round * 100 + 3);
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = WorkStealingPool::with_threads(2);
        let got: Vec<u64> = pool.run(Vec::<fn() -> u64>::new());
        assert!(got.is_empty());
    }

    #[test]
    fn batches_larger_than_width_complete() {
        let pool = WorkStealingPool::with_threads(2);
        let jobs: Vec<_> = (0..500_u64).map(|i| move || i + 1).collect();
        let got = pool.run(jobs);
        assert_eq!(got.iter().sum::<u64>(), (1..=500).sum());
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = std::sync::Arc::new(WorkStealingPool::with_threads(4));
        let submitters: Vec<_> = (0..4_u64)
            .map(|s| {
                let pool = std::sync::Arc::clone(&pool);
                std::thread::spawn(move || {
                    let jobs: Vec<_> = (0..50_u64).map(|i| move || s * 1000 + i).collect();
                    pool.run(jobs)
                })
            })
            .collect();
        for (s, handle) in submitters.into_iter().enumerate() {
            let got = handle.join().unwrap();
            assert_eq!(got[49], s as u64 * 1000 + 49);
        }
    }

    #[test]
    fn drop_joins_workers_with_pending_noop() {
        let pool = WorkStealingPool::with_threads(4);
        drop(pool); // no work ever submitted; must not hang
    }

    #[test]
    fn resolve_threads_prefers_explicit_over_env() {
        // model-capable builds pin to 1 regardless
        if crate::MODEL_CAPABLE {
            assert_eq!(resolve_threads(Some(4)), 1);
            assert_eq!(resolve_threads(None), 1);
        } else {
            assert_eq!(resolve_threads(Some(4)), 4);
            assert_eq!(resolve_threads(Some(0)), 1);
            assert!(resolve_threads(None) >= 1);
        }
    }
}
