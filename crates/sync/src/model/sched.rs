//! The deterministic cooperative scheduler behind a model run.
//!
//! Model threads are real OS threads, but a run-wide token guarantees that
//! exactly one of them executes at any moment: every shim operation hands the
//! token back to the scheduler, which records the event, updates the
//! vector-clock state, and picks the next thread to run — by seeded random
//! walk or by replaying a choice prefix (the DFS driver). Determinism falls
//! out of the serialization: given the same policy decisions, the execution
//! is identical, so any failure replays from its seed or choice schedule.

use std::sync::atomic::Ordering;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, PoisonError};

/// Splitmix64: the crate's only RNG — tiny, seedable, reproducible.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        Self(seed)
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// What the happens-before checker or the scheduler found wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// No thread is runnable but some are blocked.
    Deadlock,
    /// A deadlock where a blocked condvar waiter's notifications were
    /// consumed while no one was waiting — the classic lost wakeup.
    LostWakeup,
    /// A model thread panicked (and was not in the allowed-panic list).
    Panic,
    /// A [`crate::model::check`] invariant failed.
    CheckFailed,
    /// A [`crate::RaceCell`] access was not ordered (happens-before) after
    /// the last write — e.g. payload read past a `Relaxed` publication.
    DataRace,
    /// The run exceeded the per-run step budget (livelock guard).
    StepLimit,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::LostWakeup => "lost wakeup",
            ViolationKind::Panic => "panic",
            ViolationKind::CheckFailed => "check failed",
            ViolationKind::DataRace => "data race",
            ViolationKind::StepLimit => "step limit exceeded",
        };
        f.write_str(name)
    }
}

/// One detected violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Classification.
    pub kind: ViolationKind,
    /// Human-readable description with thread/object names.
    pub message: String,
}

/// One scheduling decision, recorded for hashing, replay and DFS backtracking.
#[derive(Debug, Clone)]
pub(crate) struct ChoiceRecord {
    /// How many threads were eligible at this point.
    pub eligible_len: usize,
    /// Index (into the eligible list) that was chosen.
    pub chosen_idx: usize,
    /// Index of the previously running thread in the eligible list, if it
    /// was still eligible — choosing anything else is a preemption.
    pub nonpreemptive_idx: Option<usize>,
    /// Preemptions committed before this choice.
    pub preemptions_before: usize,
}

/// Scheduling policy of one run.
#[derive(Debug)]
pub(crate) enum Policy {
    /// Uniform choice among eligible threads, from a seeded RNG.
    Random(SplitMix64),
    /// Follow `prefix` (as indices into the eligible list), then default to
    /// the non-preemptive continuation. Drives both DFS and exact replays.
    Replay { prefix: Vec<usize> },
}

/// Per-run configuration the scheduler needs.
#[derive(Debug, Clone)]
pub(crate) struct RunCfg {
    pub max_steps: usize,
    /// Substrings; a panic in a thread whose name contains one is expected
    /// (recorded in the trace, not a violation).
    pub allow_panic_from: Vec<String>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Block {
    Lock(usize),
    Wait(usize, usize),
    Reacquire(usize),
    Join(usize),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    Running,
    Runnable,
    Blocked(Block),
    Finished,
}

#[derive(Debug)]
struct Th {
    name: String,
    status: Status,
    clock: Vec<u64>,
    exit_clock: Option<Vec<u64>>,
}

#[derive(Debug, Default)]
struct AtomicState {
    /// Clock of the last releasing store (or release-sequence-continuing
    /// RMW); `None` after a plain `Relaxed` store severs the chain.
    release: Option<Vec<u64>>,
}

#[derive(Debug, Default)]
struct MutexState {
    holder: Option<usize>,
    clock: Vec<u64>,
}

#[derive(Debug, Default)]
struct CvState {
    waiters: Vec<usize>,
    wasted_notifies: usize,
}

#[derive(Debug, Default)]
struct CellState {
    last_write: Option<(usize, Vec<u64>)>,
    reads: Vec<(usize, Vec<u64>)>,
    raced: bool,
}

#[derive(Debug)]
struct State {
    cfg: RunCfg,
    policy: Policy,
    threads: Vec<Th>,
    current: Option<usize>,
    step: usize,
    preemptions: usize,
    hard_failed: bool,
    run_done: bool,
    violations: Vec<Violation>,
    choices: Vec<ChoiceRecord>,
    schedule_hash: u64,
    trace: Vec<String>,
    atomics: Vec<AtomicState>,
    mutexes: Vec<MutexState>,
    condvars: Vec<CvState>,
    cells: Vec<CellState>,
}

/// What a completed (or hard-failed) run looked like.
#[derive(Debug)]
pub(crate) struct RunOutcome {
    pub violations: Vec<Violation>,
    pub hard_failed: bool,
    pub schedule_hash: u64,
    pub chosen: Vec<usize>,
    pub choices: Vec<ChoiceRecord>,
    pub trace: Vec<String>,
}

enum Outcome<R> {
    Proceed(R),
    Block(Block, R),
}

fn join_clock(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = (*d).max(*s);
    }
}

fn clock_le(a: &[u64], b: &[u64]) -> bool {
    a.iter()
        .enumerate()
        .all(|(i, &av)| av <= b.get(i).copied().unwrap_or(0))
}

fn is_acquiring(order: Ordering) -> bool {
    matches!(
        order,
        // ordering: classifying the caller's requested ordering, not an atomic op
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn is_releasing(order: Ordering) -> bool {
    matches!(
        order,
        // ordering: classifying the caller's requested ordering, not an atomic op
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// The run-wide scheduler; every shim object of a run holds an `Arc` to it.
#[derive(Debug)]
pub(crate) struct Scheduler {
    state: StdMutex<State>,
    cv: StdCondvar,
}

type Guard<'a> = std::sync::MutexGuard<'a, State>;

impl Scheduler {
    /// Creates the scheduler with the root thread (tid 0) already running.
    pub(crate) fn new(cfg: RunCfg, policy: Policy, root_name: &str) -> Self {
        Self {
            state: StdMutex::new(State {
                cfg,
                policy,
                threads: vec![Th {
                    name: root_name.to_string(),
                    status: Status::Running,
                    clock: vec![1],
                    exit_clock: None,
                }],
                current: Some(0),
                step: 0,
                preemptions: 0,
                hard_failed: false,
                run_done: false,
                violations: Vec::new(),
                choices: Vec::new(),
                schedule_hash: 0xcbf2_9ce4_8422_2325,
                trace: Vec::new(),
                atomics: Vec::new(),
                mutexes: Vec::new(),
                condvars: Vec::new(),
                cells: Vec::new(),
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock(&self) -> Guard<'_> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Parks the calling thread forever (the run hard-failed; the controller
    /// has been woken and abandons these threads — bounded by fail-fast).
    fn park(&self, mut st: Guard<'_>) -> ! {
        loop {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn record_violation(st: &mut State, kind: ViolationKind, message: String) {
        if st.violations.len() < 8 {
            st.violations.push(Violation { kind, message });
        }
    }

    fn trace_line(st: &mut State, tid: usize, label: &str) {
        let name = &st.threads[tid].name;
        let line = format!("{:>5}  t{}:{:<20} {}", st.step, tid, name, label);
        st.trace.push(line);
    }

    fn hard_fail(&self, st: &mut State) {
        st.hard_failed = true;
        st.current = None;
        self.cv.notify_all();
    }

    /// Is `tid` schedulable right now?
    fn eligible(st: &State, tid: usize) -> bool {
        match &st.threads[tid].status {
            Status::Runnable => true,
            Status::Blocked(Block::Lock(m)) | Status::Blocked(Block::Reacquire(m)) => {
                st.mutexes[*m].holder.is_none()
            }
            Status::Blocked(Block::Join(t)) => st.threads[*t].status == Status::Finished,
            Status::Blocked(Block::Wait(_, _)) | Status::Running | Status::Finished => false,
        }
    }

    /// Grants the token to `tid`, completing whatever it was blocked on.
    fn commit_grant(st: &mut State, tid: usize) {
        let status = st.threads[tid].status.clone();
        match status {
            Status::Blocked(Block::Lock(m)) | Status::Blocked(Block::Reacquire(m)) => {
                st.mutexes[m].holder = Some(tid);
                let mclock = st.mutexes[m].clock.clone();
                join_clock(&mut st.threads[tid].clock, &mclock);
                Self::trace_line(st, tid, &format!("acquired m{m}"));
            }
            Status::Blocked(Block::Join(t)) => {
                let child = st.threads[t].exit_clock.clone().unwrap_or_default();
                join_clock(&mut st.threads[tid].clock, &child);
                Self::trace_line(st, tid, &format!("joined t{t}"));
            }
            Status::Runnable => {}
            Status::Blocked(Block::Wait(_, _)) | Status::Running | Status::Finished => {
                unreachable!("granting a non-eligible thread")
            }
        }
        st.threads[tid].status = Status::Running;
        st.current = Some(tid);
    }

    /// Picks the next thread (the single choice point of the whole model).
    fn choose_next(&self, st: &mut State) {
        let prev = st.current.take();
        let eligible: Vec<usize> = (0..st.threads.len())
            .filter(|&i| Self::eligible(st, i))
            .collect();
        if eligible.is_empty() {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                st.run_done = true;
                self.cv.notify_all();
            } else {
                let (kind, message) = Self::describe_deadlock(st);
                Self::record_violation(st, kind, message);
                self.hard_fail(st);
            }
            return;
        }
        let nonpreemptive_idx = prev.and_then(|p| eligible.iter().position(|&t| t == p));
        let pos = st.choices.len();
        let chosen_idx = match &mut st.policy {
            Policy::Random(rng) => (rng.next() as usize) % eligible.len(),
            Policy::Replay { prefix } => {
                if pos < prefix.len() {
                    prefix[pos].min(eligible.len() - 1)
                } else {
                    nonpreemptive_idx.unwrap_or(0)
                }
            }
        };
        let preemptive = nonpreemptive_idx.is_some_and(|ni| ni != chosen_idx);
        st.choices.push(ChoiceRecord {
            eligible_len: eligible.len(),
            chosen_idx,
            nonpreemptive_idx,
            preemptions_before: st.preemptions,
        });
        if preemptive {
            st.preemptions += 1;
        }
        let chosen = eligible[chosen_idx];
        // fnv1a over the chosen tids: the schedule's identity
        st.schedule_hash = (st.schedule_hash ^ chosen as u64).wrapping_mul(0x0000_0100_0000_01b3);
        Self::commit_grant(st, chosen);
        self.cv.notify_all();
    }

    fn describe_deadlock(st: &State) -> (ViolationKind, String) {
        let mut lost_wakeup = false;
        let mut parts = Vec::new();
        for (i, t) in st.threads.iter().enumerate() {
            let reason = match &t.status {
                Status::Blocked(Block::Lock(m)) => format!("wants m{m}"),
                Status::Blocked(Block::Reacquire(m)) => format!("reacquiring m{m}"),
                Status::Blocked(Block::Wait(cv, m)) => {
                    if st.condvars[*cv].wasted_notifies > 0 {
                        lost_wakeup = true;
                    }
                    format!(
                        "waiting on cv{cv} (mutex m{m}, {} notify(s) hit no waiter)",
                        st.condvars[*cv].wasted_notifies
                    )
                }
                Status::Blocked(Block::Join(j)) => format!("joining t{j}"),
                Status::Finished => continue,
                Status::Running | Status::Runnable => continue,
            };
            parts.push(format!("t{i}:{} {}", t.name, reason));
        }
        let kind = if lost_wakeup {
            ViolationKind::LostWakeup
        } else {
            ViolationKind::Deadlock
        };
        (kind, format!("all threads blocked: {}", parts.join("; ")))
    }

    fn wait_for_grant<'a>(&'a self, mut st: Guard<'a>, tid: usize) -> Guard<'a> {
        loop {
            if st.hard_failed {
                self.park(st);
            }
            if st.current == Some(tid) && st.threads[tid].status == Status::Running {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The universal schedule point. The policy choice happens *before* the
    /// operation (loom-style pre-yield): the calling thread offers the token
    /// back, the policy picks who runs next (possibly someone else, possibly
    /// this thread again), and only once re-granted does the operation
    /// execute — atomically, keeping the token. That way any other thread
    /// can be interleaved between two consecutive operations of this one.
    fn step<R>(
        &self,
        tid: usize,
        label: impl FnOnce() -> String,
        action: impl FnOnce(&mut State) -> Outcome<R>,
    ) -> R {
        let mut st = self.lock();
        if st.hard_failed {
            self.park(st);
        }
        debug_assert_eq!(st.current, Some(tid), "step by a thread without the token");
        st.step += 1;
        if st.step > st.cfg.max_steps {
            let msg = format!("run exceeded {} steps (livelock?)", st.cfg.max_steps);
            Self::record_violation(&mut st, ViolationKind::StepLimit, msg);
            self.hard_fail(&mut st);
            self.park(st);
        }
        // pre-emption point: offer the token before the operation
        st.threads[tid].status = Status::Runnable;
        self.choose_next(&mut st);
        let mut st = self.wait_for_grant(st, tid);
        let tick = tid;
        if st.threads[tid].clock.len() <= tick {
            st.threads[tid].clock.resize(tick + 1, 0);
        }
        st.threads[tid].clock[tick] += 1;
        let outcome = action(&mut st);
        {
            let l = label();
            Self::trace_line(&mut st, tid, &l);
        }
        match outcome {
            // the operation is done; keep the token and continue
            Outcome::Proceed(r) => r,
            Outcome::Block(reason, r) => {
                st.threads[tid].status = Status::Blocked(reason);
                self.choose_next(&mut st);
                let _st = self.wait_for_grant(st, tid);
                r
            }
        }
    }

    // ---- registration (deterministic bookkeeping, not schedule points) ----

    pub(crate) fn register_atomic(&self) -> usize {
        let mut st = self.lock();
        st.atomics.push(AtomicState::default());
        st.atomics.len() - 1
    }

    pub(crate) fn register_mutex(&self) -> usize {
        let mut st = self.lock();
        st.mutexes.push(MutexState::default());
        st.mutexes.len() - 1
    }

    pub(crate) fn register_condvar(&self) -> usize {
        let mut st = self.lock();
        st.condvars.push(CvState::default());
        st.condvars.len() - 1
    }

    pub(crate) fn register_cell(&self) -> usize {
        let mut st = self.lock();
        st.cells.push(CellState::default());
        st.cells.len() - 1
    }

    // ---- atomics ----

    pub(crate) fn atomic_load(
        &self,
        tid: usize,
        id: usize,
        atomic: &std::sync::atomic::AtomicU64,
        order: Ordering,
    ) -> u64 {
        self.step(
            tid,
            || format!("a{id} load({order:?})"),
            |st| {
                // serialized execution: the real load always sees the latest
                // store; the clocks model what the *ordering* promises
                // ordering: model-internal op, serialized under the scheduler lock
                let v = atomic.load(Ordering::SeqCst);
                if is_acquiring(order) {
                    if let Some(release) = st.atomics[id].release.clone() {
                        join_clock(&mut st.threads[tid].clock, &release);
                    }
                }
                Outcome::Proceed(v)
            },
        )
    }

    pub(crate) fn atomic_store(
        &self,
        tid: usize,
        id: usize,
        atomic: &std::sync::atomic::AtomicU64,
        value: u64,
        order: Ordering,
    ) {
        self.step(
            tid,
            || format!("a{id} store({order:?}) = {value}"),
            |st| {
                // ordering: model-internal op, serialized under the scheduler lock
                atomic.store(value, Ordering::SeqCst);
                st.atomics[id].release = if is_releasing(order) {
                    Some(st.threads[tid].clock.clone())
                } else {
                    // a plain Relaxed store severs the release chain: later
                    // Acquire loads inherit nothing
                    None
                };
                Outcome::Proceed(())
            },
        )
    }

    pub(crate) fn atomic_rmw(
        &self,
        tid: usize,
        id: usize,
        atomic: &std::sync::atomic::AtomicU64,
        delta: u64,
        subtract: bool,
        order: Ordering,
    ) -> u64 {
        self.step(
            tid,
            || {
                let op = if subtract { "fetch_sub" } else { "fetch_add" };
                format!("a{id} {op}({order:?}) {delta}")
            },
            |st| {
                let old = if subtract {
                    atomic.fetch_sub(delta, Ordering::SeqCst) // ordering: model-internal, serialized
                } else {
                    atomic.fetch_add(delta, Ordering::SeqCst) // ordering: model-internal, serialized
                };
                if is_acquiring(order) {
                    if let Some(release) = st.atomics[id].release.clone() {
                        join_clock(&mut st.threads[tid].clock, &release);
                    }
                }
                if is_releasing(order) {
                    let mut clock = st.threads[tid].clock.clone();
                    if let Some(prev) = &st.atomics[id].release {
                        join_clock(&mut clock, prev);
                    }
                    st.atomics[id].release = Some(clock);
                }
                // a relaxed RMW continues an existing release sequence:
                // leave the stored release clock untouched
                Outcome::Proceed(old)
            },
        )
    }

    // ---- mutexes ----

    pub(crate) fn mutex_lock(&self, tid: usize, id: usize) {
        self.step(
            tid,
            || format!("m{id} lock"),
            |st| {
                if st.mutexes[id].holder.is_none() {
                    st.mutexes[id].holder = Some(tid);
                    let mclock = st.mutexes[id].clock.clone();
                    join_clock(&mut st.threads[tid].clock, &mclock);
                    Outcome::Proceed(())
                } else {
                    Outcome::Block(Block::Lock(id), ())
                }
            },
        )
    }

    pub(crate) fn mutex_unlock(&self, tid: usize, id: usize) {
        self.step(
            tid,
            || format!("m{id} unlock"),
            |st| {
                debug_assert_eq!(st.mutexes[id].holder, Some(tid));
                st.mutexes[id].holder = None;
                let tclock = st.threads[tid].clock.clone();
                join_clock(&mut st.mutexes[id].clock, &tclock);
                Outcome::Proceed(())
            },
        )
    }

    // ---- condvars ----

    pub(crate) fn condvar_wait(&self, tid: usize, cv_id: usize, mutex_id: usize) {
        self.step(
            tid,
            || format!("cv{cv_id} wait (releases m{mutex_id})"),
            |st| {
                debug_assert_eq!(st.mutexes[mutex_id].holder, Some(tid));
                st.mutexes[mutex_id].holder = None;
                let tclock = st.threads[tid].clock.clone();
                join_clock(&mut st.mutexes[mutex_id].clock, &tclock);
                st.condvars[cv_id].waiters.push(tid);
                Outcome::Block(Block::Wait(cv_id, mutex_id), ())
            },
        )
    }

    pub(crate) fn condvar_notify(&self, tid: usize, cv_id: usize, all: bool) {
        self.step(
            tid,
            || {
                let which = if all { "notify_all" } else { "notify_one" };
                format!("cv{cv_id} {which}")
            },
            |st| {
                if st.condvars[cv_id].waiters.is_empty() {
                    st.condvars[cv_id].wasted_notifies += 1;
                } else if all {
                    let waiters = std::mem::take(&mut st.condvars[cv_id].waiters);
                    for w in waiters {
                        if let Status::Blocked(Block::Wait(_, m)) = st.threads[w].status.clone() {
                            st.threads[w].status = Status::Blocked(Block::Reacquire(m));
                        }
                    }
                } else {
                    // deterministic FIFO: the first waiter wakes
                    let w = st.condvars[cv_id].waiters.remove(0);
                    if let Status::Blocked(Block::Wait(_, m)) = st.threads[w].status.clone() {
                        st.threads[w].status = Status::Blocked(Block::Reacquire(m));
                    }
                }
                Outcome::Proceed(())
            },
        )
    }

    // ---- race-checked plain data ----

    pub(crate) fn cell_read(&self, tid: usize, id: usize) {
        self.step(
            tid,
            || format!("cell{id} read"),
            |st| {
                let clock = st.threads[tid].clock.clone();
                let mut race_msg = None;
                if let Some((wtid, wclock)) = &st.cells[id].last_write {
                    if *wtid != tid && !clock_le(wclock, &clock) && !st.cells[id].raced {
                        race_msg = Some(format!(
                            "cell{id}: read by t{tid}:{} is not ordered after the last \
                             write by t{wtid}:{} (no happens-before edge — was the \
                             publishing store downgraded from Release?)",
                            st.threads[tid].name, st.threads[*wtid].name
                        ));
                    }
                }
                if let Some(msg) = race_msg {
                    st.cells[id].raced = true;
                    Self::record_violation(st, ViolationKind::DataRace, msg);
                }
                st.cells[id].reads.push((tid, clock));
                Outcome::Proceed(())
            },
        )
    }

    pub(crate) fn cell_write(&self, tid: usize, id: usize) {
        self.step(
            tid,
            || format!("cell{id} write"),
            |st| {
                let clock = st.threads[tid].clock.clone();
                let mut race_msg = None;
                if !st.cells[id].raced {
                    if let Some((wtid, wclock)) = &st.cells[id].last_write {
                        if *wtid != tid && !clock_le(wclock, &clock) {
                            race_msg = Some(format!(
                                "cell{id}: write by t{tid}:{} races the previous write by t{wtid}",
                                st.threads[tid].name
                            ));
                        }
                    }
                    if race_msg.is_none() {
                        for (rtid, rclock) in &st.cells[id].reads {
                            if *rtid != tid && !clock_le(rclock, &clock) {
                                race_msg = Some(format!(
                                    "cell{id}: write by t{tid}:{} races an unordered read by t{rtid}",
                                    st.threads[tid].name
                                ));
                                break;
                            }
                        }
                    }
                }
                if let Some(msg) = race_msg {
                    st.cells[id].raced = true;
                    Self::record_violation(st, ViolationKind::DataRace, msg);
                }
                st.cells[id].last_write = Some((tid, clock));
                st.cells[id].reads.clear();
                Outcome::Proceed(())
            },
        )
    }

    // ---- threads ----

    pub(crate) fn yield_point(&self, tid: usize) {
        self.step(tid, || "yield".to_string(), |_| Outcome::Proceed(()));
    }

    pub(crate) fn annotate(&self, tid: usize, msg: &str) {
        self.step(tid, || format!("note: {msg}"), |_| Outcome::Proceed(()));
    }

    /// Registers a child thread; the OS thread is spawned by the shim right
    /// after. Deliberately NOT a schedule point: the parent must keep the
    /// token until the OS thread exists, else the scheduler could grant a
    /// thread that cannot run yet. The child is eligible from the parent's
    /// next schedule point on — deterministically, regardless of how fast
    /// the OS actually starts it (the token grant waits for it).
    pub(crate) fn spawn_thread(&self, tid: usize, name: &str) -> usize {
        let mut st = self.lock();
        if st.hard_failed {
            self.park(st);
        }
        let mut clock = st.threads[tid].clock.clone();
        let child = st.threads.len();
        if clock.len() <= child {
            clock.resize(child + 1, 0);
        }
        clock[child] += 1;
        st.threads.push(Th {
            name: name.to_string(),
            status: Status::Runnable,
            clock,
            exit_clock: None,
        });
        let label = format!("spawn t{child}:'{name}'");
        Self::trace_line(&mut st, tid, &label);
        child
    }

    /// Blocks the new OS thread until the scheduler first grants it.
    pub(crate) fn wait_first_grant(&self, tid: usize) {
        let st = self.lock();
        let _st = self.wait_for_grant(st, tid);
    }

    /// Blocks until `target` finishes (the model side of `join`).
    pub(crate) fn join_thread(&self, tid: usize, target: usize) {
        self.step(
            tid,
            || format!("join t{target}"),
            |st| {
                if st.threads[target].status == Status::Finished {
                    let child = st.threads[target].exit_clock.clone().unwrap_or_default();
                    join_clock(&mut st.threads[tid].clock, &child);
                    Outcome::Proceed(())
                } else {
                    Outcome::Block(Block::Join(target), ())
                }
            },
        )
    }

    /// Marks `tid` finished. `panic`: `(message, was_model_check)` when the
    /// thread is exiting by panic. Does not wait for a grant — the OS thread
    /// exits right after.
    pub(crate) fn thread_exit(&self, tid: usize, panic: Option<(String, bool)>) {
        let mut st = self.lock();
        if st.hard_failed {
            self.park(st);
        }
        st.step += 1;
        let tick_len = st.threads[tid].clock.len().max(tid + 1);
        st.threads[tid].clock.resize(tick_len, 0);
        st.threads[tid].clock[tid] += 1;
        match &panic {
            None => Self::trace_line(&mut st, tid, "exit"),
            Some((msg, _)) => {
                let l = format!("exit by panic: {msg}");
                Self::trace_line(&mut st, tid, &l);
            }
        }
        if let Some((msg, is_check)) = panic {
            let allowed = {
                let name = &st.threads[tid].name;
                st.cfg.allow_panic_from.iter().any(|p| name.contains(p))
            };
            if !allowed {
                let kind = if is_check {
                    ViolationKind::CheckFailed
                } else {
                    ViolationKind::Panic
                };
                let message = format!("t{tid}:{}: {msg}", st.threads[tid].name);
                Self::record_violation(&mut st, kind, message);
            }
        }
        st.threads[tid].status = Status::Finished;
        let clock = st.threads[tid].clock.clone();
        st.threads[tid].exit_clock = Some(clock);
        self.choose_next(&mut st);
    }

    // ---- controller ----

    /// Blocks the controller until the run completes or hard-fails.
    pub(crate) fn wait_run_end(&self) -> RunOutcome {
        let mut st = self.lock();
        while !st.run_done && !st.hard_failed {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        RunOutcome {
            violations: st.violations.clone(),
            hard_failed: st.hard_failed,
            schedule_hash: st.schedule_hash,
            chosen: st.choices.iter().map(|c| c.chosen_idx).collect(),
            choices: st.choices.clone(),
            trace: st.trace.clone(),
        }
    }
}
