//! Deterministic model-checking harness (compiled under the `model` feature).
//!
//! The entry points take a *scenario* — a plain closure that builds shim
//! objects, spawns shim threads, and asserts invariants with [`check`] — and
//! run it many times under the cooperative scheduler, each run forcing a
//! different interleaving:
//!
//! * [`explore`] — seeded random walks; cheap, broad, the default. The
//!   per-run seed is derived from [`ModelConfig::seed`], so a failure report
//!   names the exact seed to hand to [`replay`].
//! * [`explore_dfs`] — systematic bounded-preemption DFS over scheduling
//!   choices; exhaustive for small scenarios.
//! * [`replay`] / [`run_schedule`] — re-run one specific interleaving from a
//!   failure report (by seed, or by explicit choice schedule).
//!
//! On any violation the harness writes the full trace to
//! [`ModelConfig::trace_dir`] and prints the seed/schedule to stderr; the
//! returned [`ExploreReport`] carries the same data for assertions.

mod sched;

pub use sched::{Violation, ViolationKind};

pub(crate) use sched::Scheduler;
use sched::{Policy, RunCfg, RunOutcome, SplitMix64};

use std::cell::RefCell;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

// ---- thread-local run context -------------------------------------------

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) sched: Arc<Scheduler>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Panic payload used by [`check`]: unwinds without touching the panic hook,
/// so failing runs stay quiet and report through the harness instead.
#[derive(Debug)]
pub struct CheckFailed(pub String);

pub(crate) fn describe_panic(payload: &(dyn std::any::Any + Send)) -> (String, bool) {
    if let Some(check) = payload.downcast_ref::<CheckFailed>() {
        (check.0.clone(), true)
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        ((*s).to_string(), false)
    } else if let Some(s) = payload.downcast_ref::<String>() {
        (s.clone(), false)
    } else {
        ("opaque panic payload".to_string(), false)
    }
}

/// Asserts a scenario invariant. Outside a model run this is a plain
/// `assert!`; inside one, failure unwinds quietly (no panic-hook noise) and
/// the harness reports it with the reproducing seed and trace.
pub fn check(cond: bool, msg: &str) {
    if cond {
        return;
    }
    if current().is_some() {
        std::panic::resume_unwind(Box::new(CheckFailed(msg.to_string())));
    }
    panic!("model check failed: {msg}");
}

/// Adds a free-form note to the current run's trace (no-op outside a run).
/// Also a schedule point, like every shim operation.
pub fn annotate(msg: &str) {
    if let Some(ctx) = current() {
        ctx.sched.annotate(ctx.tid, msg);
    }
}

// ---- configuration -------------------------------------------------------

/// Configuration for [`explore`] / [`replay`].
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Scenario name (reports, trace file names).
    pub name: String,
    /// Number of random-walk runs.
    pub iterations: usize,
    /// Base seed; the per-run seed is derived from it and the run index.
    pub seed: u64,
    /// Per-run step budget (livelock guard).
    pub max_steps: usize,
    /// Thread-name substrings whose panics are expected, not violations.
    pub allow_panic_from: Vec<String>,
    /// Stop at the first violating run (default true).
    pub fail_fast: bool,
    /// Where violation traces are written (`None` disables the dump).
    pub trace_dir: Option<PathBuf>,
}

impl ModelConfig {
    /// Defaults: 1,200 iterations, a fixed seed, 50,000 steps per run,
    /// traces under `target/model-traces`. The environment can override
    /// `MODEL_ITERS` (run count) and `MODEL_SEED` (base seed, decimal or
    /// `0x`-hex) to widen a search or reproduce a report.
    pub fn new(name: &str) -> Self {
        let iterations = std::env::var("MODEL_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1_200);
        let seed = std::env::var("MODEL_SEED")
            .ok()
            .and_then(|v| parse_seed(&v))
            .unwrap_or(0x5eed_c0ff_ee00_0001);
        let trace_dir = std::env::var_os("MODEL_TRACE_DIR")
            .map(PathBuf::from)
            .or_else(|| Some(PathBuf::from("target/model-traces")));
        Self {
            name: name.to_string(),
            iterations,
            seed,
            max_steps: 50_000,
            allow_panic_from: Vec::new(),
            fail_fast: true,
            trace_dir,
        }
    }
}

fn parse_seed(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

/// Configuration for [`explore_dfs`].
#[derive(Debug, Clone)]
pub struct DfsConfig {
    /// Scenario name (reports, trace file names).
    pub name: String,
    /// Preemption bound: runs may switch away from a runnable thread at most
    /// this many times (CHESS-style; most bugs show up with ≤ 2).
    pub max_preemptions: usize,
    /// Hard cap on the number of runs (keeps CI bounded).
    pub max_runs: usize,
    /// Per-run step budget.
    pub max_steps: usize,
    /// Thread-name substrings whose panics are expected.
    pub allow_panic_from: Vec<String>,
    /// Stop at the first violating run (default true).
    pub fail_fast: bool,
    /// Where violation traces are written.
    pub trace_dir: Option<PathBuf>,
}

impl DfsConfig {
    /// Defaults: preemption bound 2, at most 5,000 runs.
    pub fn new(name: &str) -> Self {
        let base = ModelConfig::new(name);
        Self {
            name: base.name,
            max_preemptions: 2,
            max_runs: 5_000,
            max_steps: base.max_steps,
            allow_panic_from: Vec::new(),
            fail_fast: true,
            trace_dir: base.trace_dir,
        }
    }
}

// ---- reports -------------------------------------------------------------

/// A reproducible description of one violating run.
#[derive(Debug, Clone)]
pub struct ViolationReport {
    /// Scenario name.
    pub scenario: String,
    /// Seed reproducing the run via [`replay`] (random-walk runs only).
    pub seed: Option<u64>,
    /// Choice schedule reproducing the run via [`run_schedule`].
    pub schedule: Vec<usize>,
    /// Classification of the first violation.
    pub kind: ViolationKind,
    /// Message of the first violation.
    pub message: String,
    /// Full scheduler trace of the run.
    pub trace: Vec<String>,
    /// Where the trace was written, if a trace dir is configured.
    pub trace_path: Option<PathBuf>,
}

/// Outcome of an exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// How many runs executed.
    pub runs: usize,
    /// How many *distinct* interleavings those runs covered (by schedule
    /// hash — different hashes are guaranteed-different schedules).
    pub distinct_interleavings: usize,
    /// The first violation found, if any.
    pub violation: Option<ViolationReport>,
}

impl ExploreReport {
    /// True when no run violated anything.
    pub fn clean(&self) -> bool {
        self.violation.is_none()
    }
}

// ---- harness -------------------------------------------------------------

fn run_one(
    name: &str,
    policy: Policy,
    max_steps: usize,
    allow_panic_from: Vec<String>,
    scenario: Arc<dyn Fn() + Send + Sync>,
) -> RunOutcome {
    let sched = Arc::new(Scheduler::new(
        RunCfg {
            max_steps,
            allow_panic_from,
        },
        policy,
        "root",
    ));
    let worker = Arc::clone(&sched);
    let root = std::thread::Builder::new()
        .name(format!("model-root-{name}"))
        .spawn(move || {
            set_ctx(Some(Ctx {
                sched: Arc::clone(&worker),
                tid: 0,
            }));
            let result = catch_unwind(AssertUnwindSafe(|| scenario()));
            match result {
                Ok(()) => worker.thread_exit(0, None),
                Err(payload) => {
                    let (msg, is_check) = describe_panic(payload.as_ref());
                    worker.thread_exit(0, Some((msg, is_check)));
                }
            }
            set_ctx(None);
        })
        .unwrap_or_else(|e| panic!("model: failed to spawn root thread: {e}"));
    let outcome = sched.wait_run_end();
    if !outcome.hard_failed {
        // clean end (or soft violations only): every thread ran to completion
        let _ = root.join();
    }
    // hard failure: the run's threads are parked; abandon them (bounded by
    // fail-fast — only violating runs leak, and only their few threads)
    outcome
}

fn dump_trace(dir: &Path, report: &ViolationReport) -> Option<PathBuf> {
    // lint: allow(no-raw-fs) -- trace dump directory, diagnostic output only
    std::fs::create_dir_all(dir).ok()?;
    let tag = match report.seed {
        Some(seed) => format!("seed-{seed:016x}"),
        None => format!("schedule-{:04}", report.schedule.len()),
    };
    let path = dir.join(format!("{}-{tag}.txt", report.scenario));
    let mut body = String::new();
    body.push_str(&format!(
        "scenario : {}\nviolation: {}\nmessage  : {}\n",
        report.scenario, report.kind, report.message
    ));
    match report.seed {
        Some(seed) => body.push_str(&format!(
            "seed     : 0x{seed:016x}  (replay: model::replay(&cfg, 0x{seed:016x}, scenario))\n"
        )),
        None => body.push_str("seed     : - (schedule replay only)\n"),
    }
    body.push_str(&format!("schedule : {:?}\n\ntrace:\n", report.schedule));
    for line in &report.trace {
        body.push_str(line);
        body.push('\n');
    }
    // lint: allow(no-raw-fs) -- failure-trace dump, diagnostic output only
    std::fs::write(&path, body).ok()?;
    Some(path)
}

fn build_report(
    name: &str,
    seed: Option<u64>,
    trace_dir: Option<&Path>,
    outcome: &RunOutcome,
) -> ViolationReport {
    let first = &outcome.violations[0];
    let mut report = ViolationReport {
        scenario: name.to_string(),
        seed,
        schedule: outcome.chosen.clone(),
        kind: first.kind.clone(),
        message: first.message.clone(),
        trace: outcome.trace.clone(),
        trace_path: None,
    };
    if let Some(dir) = trace_dir {
        report.trace_path = dump_trace(dir, &report);
    }
    eprintln!(
        "model: violation in scenario '{}': {}: {}",
        name, report.kind, report.message
    );
    match seed {
        Some(seed) => eprintln!(
            "model: reproduce with MODEL_SEED=0x{seed:016x} MODEL_ITERS=1, or model::replay"
        ),
        None => eprintln!(
            "model: reproduce with model::run_schedule(&cfg, &{:?}, scenario)",
            report.schedule
        ),
    }
    if let Some(path) = &report.trace_path {
        eprintln!("model: trace written to {}", path.display());
    }
    report
}

/// Runs `scenario` [`ModelConfig::iterations`] times under seeded random
/// schedules, counting distinct interleavings and reporting the first
/// violation (with its reproducing seed and trace).
pub fn explore<F>(cfg: &ModelConfig, scenario: F) -> ExploreReport
where
    F: Fn() + Send + Sync + 'static,
{
    let scenario: Arc<dyn Fn() + Send + Sync> = Arc::new(scenario);
    let mut hashes = HashSet::new();
    let mut runs = 0;
    let mut violation = None;
    for i in 0..cfg.iterations {
        // decorrelate per-run seeds from the base seed and the run index
        let run_seed =
            SplitMix64::new(cfg.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)).next();
        let outcome = run_one(
            &cfg.name,
            Policy::Random(SplitMix64::new(run_seed)),
            cfg.max_steps,
            cfg.allow_panic_from.clone(),
            Arc::clone(&scenario),
        );
        runs += 1;
        hashes.insert(outcome.schedule_hash);
        if !outcome.violations.is_empty() && violation.is_none() {
            violation = Some(build_report(
                &cfg.name,
                Some(run_seed),
                cfg.trace_dir.as_deref(),
                &outcome,
            ));
            if cfg.fail_fast {
                break;
            }
        }
    }
    ExploreReport {
        runs,
        distinct_interleavings: hashes.len(),
        violation,
    }
}

/// Re-runs `scenario` once under the exact schedule that seed produced
/// (the seed printed by a failing [`explore`]). Returns the violation, if it
/// still occurs.
pub fn replay<F>(cfg: &ModelConfig, seed: u64, scenario: F) -> Option<ViolationReport>
where
    F: Fn() + Send + Sync + 'static,
{
    let scenario: Arc<dyn Fn() + Send + Sync> = Arc::new(scenario);
    let outcome = run_one(
        &cfg.name,
        Policy::Random(SplitMix64::new(seed)),
        cfg.max_steps,
        cfg.allow_panic_from.clone(),
        scenario,
    );
    if outcome.violations.is_empty() {
        None
    } else {
        Some(build_report(
            &cfg.name,
            Some(seed),
            cfg.trace_dir.as_deref(),
            &outcome,
        ))
    }
}

/// Re-runs `scenario` once under an explicit choice schedule (indices into
/// the eligible-thread list at each scheduling point, as found in a
/// [`ViolationReport::schedule`]). Past the end of the schedule the scheduler
/// continues non-preemptively.
pub fn run_schedule<F>(
    cfg: &ModelConfig,
    schedule: &[usize],
    scenario: F,
) -> Option<ViolationReport>
where
    F: Fn() + Send + Sync + 'static,
{
    let scenario: Arc<dyn Fn() + Send + Sync> = Arc::new(scenario);
    let outcome = run_one(
        &cfg.name,
        Policy::Replay {
            prefix: schedule.to_vec(),
        },
        cfg.max_steps,
        cfg.allow_panic_from.clone(),
        scenario,
    );
    if outcome.violations.is_empty() {
        None
    } else {
        Some(build_report(
            &cfg.name,
            None,
            cfg.trace_dir.as_deref(),
            &outcome,
        ))
    }
}

/// Systematic bounded-preemption DFS: starts from the non-preemptive
/// schedule and backtracks over every scheduling choice whose alternative
/// stays within [`DfsConfig::max_preemptions`]. Exhaustive (up to the bound
/// and [`DfsConfig::max_runs`]) for small scenarios.
pub fn explore_dfs<F>(cfg: &DfsConfig, scenario: F) -> ExploreReport
where
    F: Fn() + Send + Sync + 'static,
{
    let scenario: Arc<dyn Fn() + Send + Sync> = Arc::new(scenario);
    let mut hashes = HashSet::new();
    let mut runs = 0;
    let mut violation: Option<ViolationReport> = None;
    // stack of (prefix, first index at which to branch new alternatives)
    let mut stack: Vec<(Vec<usize>, usize)> = vec![(Vec::new(), 0)];
    while let Some((prefix, branch_from)) = stack.pop() {
        if runs >= cfg.max_runs {
            break;
        }
        let outcome = run_one(
            &cfg.name,
            Policy::Replay {
                prefix: prefix.clone(),
            },
            cfg.max_steps,
            cfg.allow_panic_from.clone(),
            Arc::clone(&scenario),
        );
        runs += 1;
        hashes.insert(outcome.schedule_hash);
        if !outcome.violations.is_empty() && violation.is_none() {
            violation = Some(build_report(
                &cfg.name,
                None,
                cfg.trace_dir.as_deref(),
                &outcome,
            ));
            if cfg.fail_fast {
                break;
            }
        }
        // branch alternatives at every choice point ≥ branch_from (earlier
        // points were branched when this prefix's ancestors ran)
        for (i, choice) in outcome.choices.iter().enumerate().skip(branch_from) {
            for alt in 0..choice.eligible_len {
                if alt == choice.chosen_idx {
                    continue;
                }
                let extra = usize::from(choice.nonpreemptive_idx != Some(alt));
                if choice.preemptions_before + extra > cfg.max_preemptions {
                    continue;
                }
                let mut next = outcome.chosen[..i].to_vec();
                next.push(alt);
                stack.push((next, i + 1));
            }
        }
    }
    ExploreReport {
        runs,
        distinct_interleavings: hashes.len(),
        violation,
    }
}
