//! Concurrency shim for the serving tier: model-checkable synchronization
//! primitives.
//!
//! The serving layer (`pref_service`) is hand-rolled concurrency — an RCU
//! snapshot cell, a bounded condvar queue, per-shard writer threads with a
//! flush barrier. Wall-clock stress tests only explore whichever
//! interleavings the OS scheduler happens to produce; this crate provides the
//! loom/TSan role in-repo, on the stable toolchain, with no dependencies and
//! no `unsafe`:
//!
//! * **Passthrough (default).** [`AtomicU64`], [`Mutex`], [`Condvar`],
//!   [`RaceCell`] and [`thread`] are thin wrappers over `std` with `#[inline]`
//!   delegation — zero cost on the read hot path. One deliberate API
//!   difference: [`Mutex::lock`] and [`Condvar::wait`] do not surface lock
//!   poisoning (they recover the inner data). The service signals writer
//!   panics explicitly (its `ExitNotice` pattern), so poison propagation
//!   would only re-encode that signal as a panic in an unrelated thread.
//! * **Model mode (`model` feature).** The same types additionally check a
//!   thread-local for an active model run. Inside a run, every operation
//!   becomes a *schedule point* of a deterministic cooperative scheduler:
//!   only one thread runs at a time, and at every point the scheduler picks
//!   the next thread — by a seeded random walk ([`model::explore`]) or by
//!   systematic bounded-preemption DFS ([`model::explore_dfs`]). A failing
//!   interleaving is fully reproducible from its printed seed (or choice
//!   schedule) via [`model::replay`] / [`model::run_schedule`].
//!
//! During a model run the scheduler maintains **vector clocks** and checks
//! happens-before as the trace unfolds:
//!
//! * plain data reads/writes through [`RaceCell`] must be ordered after the
//!   last write (else: data race — e.g. snapshot contents read without being
//!   ordered after the publishing `Release` store);
//! * `Acquire` loads only inherit the writer's clock if the last store was
//!   releasing — downgrading a publishing store to `Relaxed` severs the edge
//!   and the next payload read is flagged;
//! * whole-system deadlock (no runnable thread) is reported with every
//!   blocked thread's wait reason, classified as a **lost wakeup** when a
//!   thread waits on a condvar whose notifies were consumed with no waiter
//!   present;
//! * scenario-level invariants (per-reader version monotonicity, flush
//!   acknowledged only after publication, ...) are asserted with
//!   [`model::check`], which fails the run quietly and reports the seed and
//!   trace.
//!
//! Threads must be spawned through [`thread::spawn`] / [`thread::Builder`] to
//! take part in a model run; shim objects constructed outside a run behave as
//! plain std even when used inside one (documented escape hatch — the model
//! only tracks what it saw created).
//!
//! # Passthrough example (normal builds and normal threads)
//!
//! ```
//! use pref_sync::{AtomicU64, Mutex, Ordering};
//!
//! let visits = AtomicU64::new(0);
//! // ordering: counter, no payload published through it
//! visits.fetch_add(1, Ordering::Relaxed);
//! let cell = Mutex::new(vec![1, 2, 3]);
//! assert_eq!(cell.lock().len(), 3);
//! // ordering: counter read back on the same thread
//! assert_eq!(visits.load(Ordering::Relaxed), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use std::sync::atomic::Ordering;

#[cfg(not(feature = "model"))]
mod passthrough;
#[cfg(not(feature = "model"))]
pub use passthrough::{thread, AtomicU64, Condvar, Mutex, MutexGuard, RaceCell};

#[cfg(feature = "model")]
mod shim;
#[cfg(feature = "model")]
pub use shim::{thread, AtomicU64, Condvar, Mutex, MutexGuard, RaceCell};

#[cfg(feature = "model")]
pub mod model;

pub mod pool;
pub use pool::{resolve_threads, WorkStealingPool};

pub mod time;

/// True when this build carries the model-checking scheduler (the `model`
/// feature). Lets tests assert which flavor they exercise.
pub const MODEL_CAPABLE: bool = cfg!(feature = "model");

#[cfg(all(test, feature = "model"))]
mod tests;
