//! Zero-cost std passthroughs (compiled when the `model` feature is off).
//!
//! Every type here is a newtype over its `std::sync` counterpart with
//! `#[inline]` delegation; the only semantic difference is that lock
//! poisoning is recovered instead of surfaced (see the crate docs).

use std::sync::atomic::Ordering;
use std::sync::PoisonError;

/// Shim over [`std::sync::atomic::AtomicU64`].
#[derive(Debug, Default)]
pub struct AtomicU64 {
    inner: std::sync::atomic::AtomicU64,
}

impl AtomicU64 {
    /// Creates the atomic with an initial value.
    #[inline]
    pub fn new(value: u64) -> Self {
        Self {
            inner: std::sync::atomic::AtomicU64::new(value),
        }
    }

    /// Atomic load with the given ordering.
    #[inline]
    pub fn load(&self, order: Ordering) -> u64 {
        self.inner.load(order)
    }

    /// Atomic store with the given ordering.
    #[inline]
    pub fn store(&self, value: u64, order: Ordering) {
        self.inner.store(value, order);
    }

    /// Atomic add; returns the previous value.
    #[inline]
    pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        self.inner.fetch_add(value, order)
    }

    /// Atomic subtract; returns the previous value.
    #[inline]
    pub fn fetch_sub(&self, value: u64, order: Ordering) -> u64 {
        self.inner.fetch_sub(value, order)
    }
}

/// Shim over [`std::sync::Mutex`]. [`Mutex::lock`] recovers from poisoning
/// instead of returning a `Result` (see the crate docs for why).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases the lock on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex owning `value`.
    #[inline]
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until it is free. A poisoned lock (a
    /// thread panicked while holding it) is recovered, not propagated.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Shim over [`std::sync::Condvar`], paired with the shim [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates the condition variable.
    #[inline]
    pub fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard and blocks until notified; re-acquires
    /// before returning. Spurious wakeups are possible, exactly as with std —
    /// always wait in a predicate loop.
    #[inline]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        MutexGuard {
            inner: self
                .inner
                .wait(guard.inner)
                .unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Wakes one waiter.
    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Shared plain data whose accesses the model checker race-checks.
///
/// In passthrough builds this is a small mutex-backed cell (it is meant for
/// test scenarios and mutation twins, not hot paths). In model mode every
/// [`RaceCell::get`] / [`RaceCell::set`] is checked to be ordered (in the
/// happens-before sense) after the last write — the checker's stand-in for
/// "snapshot contents read without being ordered after the publishing
/// store".
#[derive(Debug, Default)]
pub struct RaceCell<T: Clone> {
    inner: std::sync::Mutex<T>,
}

impl<T: Clone> RaceCell<T> {
    /// Creates the cell owning `value`.
    #[inline]
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Reads (a clone of) the current value.
    #[inline]
    pub fn get(&self) -> T {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Replaces the current value.
    #[inline]
    pub fn set(&self, value: T) {
        *self.inner.lock().unwrap_or_else(PoisonError::into_inner) = value;
    }
}

/// Shim over [`std::thread`]: spawn, named builders, join handles, yield.
pub mod thread {
    /// Shim over [`std::thread::JoinHandle`].
    #[derive(Debug)]
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish; `Err` carries the panic payload.
        #[inline]
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Shim over [`std::thread::Builder`].
    #[derive(Debug)]
    pub struct Builder {
        inner: std::thread::Builder,
    }

    impl Default for Builder {
        #[inline]
        fn default() -> Self {
            Self::new()
        }
    }

    impl Builder {
        /// Creates a builder with default parameters.
        #[inline]
        pub fn new() -> Self {
            Self {
                inner: std::thread::Builder::new(),
            }
        }

        /// Names the thread-to-be.
        #[inline]
        pub fn name(self, name: String) -> Self {
            Self {
                inner: self.inner.name(name),
            }
        }

        /// Spawns the thread; fails only if the OS refuses the spawn.
        #[inline]
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            Ok(JoinHandle {
                inner: self.inner.spawn(f)?,
            })
        }
    }

    /// Shim over [`std::thread::spawn`].
    #[inline]
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        JoinHandle {
            inner: std::thread::spawn(f),
        }
    }

    /// Shim over [`std::thread::yield_now`] — a scheduling hint in real
    /// builds, an explicit schedule point in model runs.
    #[inline]
    pub fn yield_now() {
        std::thread::yield_now();
    }

    /// Shim over [`std::thread::panicking`]: true while the current thread
    /// is unwinding. Drop guards use it to tell a crash exit from a clean
    /// one (model threads run on real OS threads, so the std answer is
    /// accurate in both modes).
    #[inline]
    pub fn panicking() -> bool {
        std::thread::panicking()
    }
}
