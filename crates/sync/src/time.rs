//! A monotonic nanosecond clock for rate-limiting state machines.
//!
//! The admission-control layer (token buckets in `pref_net`) needs a
//! monotonic "now" to refill budgets against. It deliberately does **not**
//! read the clock inside its state machine: every transition takes an
//! explicit `now_nanos` argument, so model tests can drive logical time
//! through arbitrary interleavings deterministically. This module is the one
//! place real callers get that argument from.
//!
//! The epoch is the first call in the process (lazily pinned), so values are
//! small, strictly meaningless across processes, and safe to subtract.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the first call to this function in this process.
/// Monotonic (never decreases) and overflow-free for ~584 years of uptime.
pub fn monotonic_nanos() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_nanos_never_decreases() {
        let mut last = monotonic_nanos();
        for _ in 0..1_000 {
            let now = monotonic_nanos();
            assert!(now >= last, "clock went backwards: {now} < {last}");
            last = now;
        }
    }

    #[test]
    fn monotonic_nanos_advances_across_a_sleep() {
        let before = monotonic_nanos();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let after = monotonic_nanos();
        assert!(after > before, "2ms sleep must advance the clock");
    }
}
