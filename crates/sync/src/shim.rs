//! Runtime-dual primitives (compiled when the `model` feature is on).
//!
//! Each type carries an optional registration made at construction time: if a
//! model run was active on the constructing thread, operations from model
//! threads route through the run's scheduler; otherwise (no run, or a foreign
//! thread) they delegate straight to std, exactly like the passthrough
//! build. That keeps `cargo test` with the feature unified able to run the
//! wall-clock stress tests on real threads and the model scenarios under the
//! scheduler, in the same binary.

use crate::model::{current, Scheduler};
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};

#[derive(Debug, Clone)]
struct ObjRef {
    sched: Arc<Scheduler>,
    id: usize,
}

/// Registration made iff a model run is active on the constructing thread.
fn register(f: impl FnOnce(&Scheduler) -> usize) -> Option<ObjRef> {
    current().map(|ctx| ObjRef {
        id: f(&ctx.sched),
        sched: ctx.sched,
    })
}

/// An op routes through the scheduler iff the object is registered AND the
/// calling thread belongs to the same run.
fn route(obj: &Option<ObjRef>) -> Option<(Arc<Scheduler>, usize, usize)> {
    let obj = obj.as_ref()?;
    let ctx = current()?;
    Arc::ptr_eq(&ctx.sched, &obj.sched).then(|| (Arc::clone(&obj.sched), obj.id, ctx.tid))
}

/// Shim over [`std::sync::atomic::AtomicU64`].
#[derive(Debug)]
pub struct AtomicU64 {
    inner: std::sync::atomic::AtomicU64,
    obj: Option<ObjRef>,
}

impl Default for AtomicU64 {
    fn default() -> Self {
        Self::new(0)
    }
}

impl AtomicU64 {
    /// Creates the atomic with an initial value.
    pub fn new(value: u64) -> Self {
        Self {
            inner: std::sync::atomic::AtomicU64::new(value),
            obj: register(Scheduler::register_atomic),
        }
    }

    /// Atomic load with the given ordering.
    pub fn load(&self, order: Ordering) -> u64 {
        match route(&self.obj) {
            Some((sched, id, tid)) => sched.atomic_load(tid, id, &self.inner, order),
            None => self.inner.load(order),
        }
    }

    /// Atomic store with the given ordering.
    pub fn store(&self, value: u64, order: Ordering) {
        match route(&self.obj) {
            Some((sched, id, tid)) => sched.atomic_store(tid, id, &self.inner, value, order),
            None => self.inner.store(value, order),
        }
    }

    /// Atomic add; returns the previous value.
    pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        match route(&self.obj) {
            Some((sched, id, tid)) => sched.atomic_rmw(tid, id, &self.inner, value, false, order),
            None => self.inner.fetch_add(value, order),
        }
    }

    /// Atomic subtract; returns the previous value.
    pub fn fetch_sub(&self, value: u64, order: Ordering) -> u64 {
        match route(&self.obj) {
            Some((sched, id, tid)) => sched.atomic_rmw(tid, id, &self.inner, value, true, order),
            None => self.inner.fetch_sub(value, order),
        }
    }
}

/// Shim over [`std::sync::Mutex`]. [`Mutex::lock`] recovers from poisoning
/// instead of returning a `Result` (see the crate docs for why).
#[derive(Debug)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    obj: Option<ObjRef>,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Guard returned by [`Mutex::lock`]; releases the lock on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    routed: Option<(Arc<Scheduler>, usize, usize)>,
}

impl<T> Mutex<T> {
    /// Creates the mutex owning `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
            obj: register(Scheduler::register_mutex),
        }
    }

    /// Acquires the lock, blocking until it is free. A poisoned lock (a
    /// thread panicked while holding it) is recovered, not propagated.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let routed = route(&self.obj);
        if let Some((sched, id, tid)) = &routed {
            // the scheduler blocks until this thread is granted the lock;
            // the std lock below is then uncontended by construction
            sched.mutex_lock(*tid, *id);
        }
        MutexGuard {
            lock: self,
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
            routed,
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match &self.inner {
            Some(guard) => guard,
            None => unreachable!("guard accessed after release"),
        }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(guard) => guard,
            None => unreachable!("guard accessed after release"),
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // release the std lock before telling the scheduler, so the next
        // granted thread finds it free
        self.inner = None;
        if let Some((sched, id, tid)) = self.routed.take() {
            sched.mutex_unlock(tid, id);
        }
    }
}

/// Shim over [`std::sync::Condvar`], paired with the shim [`Mutex`].
#[derive(Debug)]
pub struct Condvar {
    inner: std::sync::Condvar,
    obj: Option<ObjRef>,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Creates the condition variable.
    pub fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
            obj: register(Scheduler::register_condvar),
        }
    }

    /// Atomically releases the guard and blocks until notified; re-acquires
    /// before returning. Spurious wakeups are possible, exactly as with std —
    /// always wait in a predicate loop. (The model scheduler itself never
    /// injects spurious wakeups; its FIFO wakeup order is one fixed
    /// refinement of the many the exploration covers.)
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let cv = route(&self.obj);
        match (cv, guard.routed.take()) {
            (Some((sched, cv_id, tid)), Some((_, mutex_id, _))) => {
                let lock = guard.lock;
                // drop the std guard without a model unlock (routed already
                // taken): condvar_wait releases the model lock atomically
                drop(guard);
                sched.condvar_wait(tid, cv_id, mutex_id);
                // granted the re-acquire: the std lock is free for us
                MutexGuard {
                    lock,
                    inner: Some(lock.inner.lock().unwrap_or_else(PoisonError::into_inner)),
                    routed: Some((sched, mutex_id, tid)),
                }
            }
            (_, routed) => {
                let lock = guard.lock;
                let inner = match guard.inner.take() {
                    Some(inner) => inner,
                    None => unreachable!("guard accessed after release"),
                };
                // both fields taken: dropping the shell is a no-op
                drop(guard);
                // plain std wait; `routed` (if any) moves to the new guard so
                // a model-held lock is still released on drop
                MutexGuard {
                    lock,
                    inner: Some(
                        self.inner
                            .wait(inner)
                            .unwrap_or_else(PoisonError::into_inner),
                    ),
                    routed,
                }
            }
        }
    }

    /// Wakes one waiter (FIFO under the model scheduler).
    pub fn notify_one(&self) {
        match route(&self.obj) {
            Some((sched, id, tid)) => sched.condvar_notify(tid, id, false),
            None => self.inner.notify_one(),
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        match route(&self.obj) {
            Some((sched, id, tid)) => sched.condvar_notify(tid, id, true),
            None => self.inner.notify_all(),
        }
    }
}

/// Shared plain data whose accesses the model checker race-checks.
///
/// See the passthrough docs: in model runs every access is checked to be
/// ordered (happens-before) after the last write; unordered access is
/// reported as a data race with the publishing/reading thread names.
#[derive(Debug)]
pub struct RaceCell<T: Clone> {
    inner: std::sync::Mutex<T>,
    obj: Option<ObjRef>,
}

impl<T: Clone + Default> Default for RaceCell<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: Clone> RaceCell<T> {
    /// Creates the cell owning `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
            obj: register(Scheduler::register_cell),
        }
    }

    /// Reads (a clone of) the current value.
    pub fn get(&self) -> T {
        if let Some((sched, id, tid)) = route(&self.obj) {
            sched.cell_read(tid, id);
        }
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Replaces the current value.
    pub fn set(&self, value: T) {
        if let Some((sched, id, tid)) = route(&self.obj) {
            sched.cell_write(tid, id);
        }
        *self.inner.lock().unwrap_or_else(PoisonError::into_inner) = value;
    }
}

/// Shim over [`std::thread`]: spawn, named builders, join handles, yield.
pub mod thread {
    use crate::model::{current, describe_panic, set_ctx, Ctx, Scheduler};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex as StdMutex, PoisonError};

    enum Handle<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            os: std::thread::JoinHandle<()>,
            sched: Arc<Scheduler>,
            tid: usize,
            slot: Arc<StdMutex<Option<T>>>,
        },
    }

    impl<T> std::fmt::Debug for Handle<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Handle::Std(_) => f.write_str("JoinHandle(std)"),
                Handle::Model { tid, .. } => write!(f, "JoinHandle(model t{tid})"),
            }
        }
    }

    /// Shim over [`std::thread::JoinHandle`].
    #[derive(Debug)]
    pub struct JoinHandle<T> {
        inner: Handle<T>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish; `Err` carries the panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            match self.inner {
                Handle::Std(handle) => handle.join(),
                Handle::Model {
                    os,
                    sched,
                    tid,
                    slot,
                } => {
                    if let Some(ctx) = current() {
                        if Arc::ptr_eq(&ctx.sched, &sched) {
                            // model-side join: blocks under the scheduler
                            // until the target thread finished
                            sched.join_thread(ctx.tid, tid);
                        }
                    }
                    os.join()?;
                    let value = slot.lock().unwrap_or_else(PoisonError::into_inner).take();
                    match value {
                        Some(v) => Ok(v),
                        // exited by panic but the payload was consumed by
                        // the model wrapper: surface a placeholder payload
                        None => Err(Box::new(format!("model thread t{tid} panicked"))),
                    }
                }
            }
        }
    }

    fn spawn_inner<F, T>(name: Option<String>, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let builder = match &name {
            Some(n) => std::thread::Builder::new().name(n.clone()),
            None => std::thread::Builder::new(),
        };
        if let Some(ctx) = current() {
            let display = name.as_deref().unwrap_or("worker");
            let tid = ctx.sched.spawn_thread(ctx.tid, display);
            let sched = Arc::clone(&ctx.sched);
            let slot = Arc::new(StdMutex::new(None));
            let slot_writer = Arc::clone(&slot);
            let worker = Arc::clone(&sched);
            let os = builder.spawn(move || {
                set_ctx(Some(Ctx {
                    sched: Arc::clone(&worker),
                    tid,
                }));
                worker.wait_first_grant(tid);
                match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(value) => {
                        *slot_writer.lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
                        worker.thread_exit(tid, None);
                    }
                    Err(payload) => {
                        let (msg, is_check) = describe_panic(payload.as_ref());
                        worker.thread_exit(tid, Some((msg, is_check)));
                        set_ctx(None);
                        // propagate so the join handle reports Err, exactly
                        // like a std thread panic (no panic-hook noise:
                        // resume_unwind skips the hook)
                        std::panic::resume_unwind(payload);
                    }
                }
                set_ctx(None);
            })?;
            Ok(JoinHandle {
                inner: Handle::Model {
                    os,
                    sched,
                    tid,
                    slot,
                },
            })
        } else {
            Ok(JoinHandle {
                inner: Handle::Std(builder.spawn(f)?),
            })
        }
    }

    /// Shim over [`std::thread::Builder`].
    #[derive(Debug, Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        /// Creates a builder with default parameters.
        pub fn new() -> Self {
            Self::default()
        }

        /// Names the thread-to-be.
        pub fn name(mut self, name: String) -> Self {
            self.name = Some(name);
            self
        }

        /// Spawns the thread; fails only if the OS refuses the spawn.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            spawn_inner(self.name, f)
        }
    }

    /// Shim over [`std::thread::spawn`].
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match spawn_inner(None, f) {
            Ok(handle) => handle,
            Err(e) => panic!("failed to spawn thread: {e}"),
        }
    }

    /// Shim over [`std::thread::yield_now`] — a scheduling hint in real
    /// builds, an explicit schedule point in model runs.
    pub fn yield_now() {
        match current() {
            Some(ctx) => ctx.sched.yield_point(ctx.tid),
            None => std::thread::yield_now(),
        }
    }

    /// Shim over [`std::thread::panicking`]: true while the current thread
    /// is unwinding. Model threads run on real OS threads (the scheduler
    /// only gates *when* they run), so the std answer is accurate inside a
    /// model run too — an injected writer crash unwinds the OS thread that
    /// hosts the model thread.
    pub fn panicking() -> bool {
        std::thread::panicking()
    }
}
