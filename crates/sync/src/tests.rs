//! Self-tests for the model scheduler and the happens-before checker.
//!
//! These run only with the `model` feature (`cargo test --workspace` enables
//! it through `pref_service`'s dev-dependency). Each test keeps iteration
//! counts small — they validate the *detector*, not explore real code.

use crate::model::{self, DfsConfig, ModelConfig, ViolationKind};
use crate::{thread, AtomicU64, Condvar, Mutex, Ordering, RaceCell};
use std::sync::Arc;

fn cfg(name: &str, iterations: usize) -> ModelConfig {
    let mut cfg = ModelConfig::new(name);
    cfg.iterations = iterations;
    cfg.trace_dir = None; // self-tests expect violations; don't litter target/
    cfg
}

#[test]
fn counters_add_up_across_threads() {
    let report = model::explore(&cfg("counters", 60), || {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    // ordering: plain counter, nothing published through it
                    counter.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        model::check(
            // ordering: counter read after both joins ordered the increments
            counter.load(Ordering::Relaxed) == 2,
            "both increments visible",
        );
    });
    assert!(report.clean(), "violation: {:?}", report.violation);
    assert!(
        report.distinct_interleavings > 1,
        "scheduler never diverged"
    );
}

#[test]
fn release_acquire_publication_is_clean() {
    let report = model::explore(&cfg("release-acquire", 120), || {
        let data = Arc::new(RaceCell::new(0u64));
        let flag = Arc::new(AtomicU64::new(0));
        let writer = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            thread::spawn(move || {
                data.set(42);
                // ordering: Release publishes the cell write above
                flag.store(1, Ordering::Release);
            })
        };
        // ordering: Acquire pairs with the writer's Release store
        if flag.load(Ordering::Acquire) == 1 {
            model::check(data.get() == 42, "published value visible");
        }
        writer.join().unwrap();
    });
    assert!(report.clean(), "violation: {:?}", report.violation);
}

#[test]
fn relaxed_publication_is_flagged_as_race() {
    let report = model::explore(&cfg("relaxed-publication", 400), || {
        let data = Arc::new(RaceCell::new(0u64));
        let flag = Arc::new(AtomicU64::new(0));
        let writer = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            thread::spawn(move || {
                data.set(42);
                // ordering: deliberately wrong — Relaxed severs the
                // happens-before edge; the checker must flag the read below
                flag.store(1, Ordering::Relaxed);
            })
        };
        // ordering: Acquire with nothing to pair with (the store is Relaxed)
        if flag.load(Ordering::Acquire) == 1 {
            let _ = data.get();
        }
        writer.join().unwrap();
    });
    let violation = report
        .violation
        .expect("relaxed publication must be caught");
    assert_eq!(violation.kind, ViolationKind::DataRace);
    assert!(
        violation.seed.is_some(),
        "random-walk failures carry a seed"
    );
    assert!(!violation.trace.is_empty(), "failures carry a trace");
}

#[test]
fn lock_order_inversion_is_reported_as_deadlock() {
    let report = model::explore(&cfg("abba", 400), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let t = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            thread::spawn(move || {
                let _b = b.lock();
                thread::yield_now();
                let _a = a.lock();
            })
        };
        {
            let _a = a.lock();
            thread::yield_now();
            let _b = b.lock();
        }
        let _ = t.join();
    });
    let violation = report
        .violation
        .expect("ABBA inversion must deadlock some schedule");
    assert_eq!(violation.kind, ViolationKind::Deadlock);
    assert!(
        violation.message.contains("wants m"),
        "message names the locks: {}",
        violation.message
    );
}

#[test]
fn missed_notify_is_classified_as_lost_wakeup() {
    let report = model::explore(&cfg("lost-wakeup", 400), || {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let done = Arc::new(AtomicU64::new(0));
        let notifier = {
            let (pair, done) = (Arc::clone(&pair), Arc::clone(&done));
            thread::spawn(move || {
                // buggy protocol: flag set and notify fired without holding
                // the mutex the waiter checks under
                // ordering: the bug under test, not the publication
                done.store(1, Ordering::Release);
                pair.1.notify_one();
            })
        };
        let guard = pair.0.lock();
        // ordering: part of the buggy protocol under test
        if done.load(Ordering::Acquire) == 0 {
            // the notify can land right here, before the wait: lost wakeup
            let _guard = pair.1.wait(guard);
        }
        notifier.join().unwrap();
    });
    let violation = report.violation.expect("lost wakeup must be caught");
    assert_eq!(violation.kind, ViolationKind::LostWakeup);
}

#[test]
fn check_failures_report_seed_and_kind() {
    let report = model::explore(&cfg("check-fails", 5), || {
        model::check(false, "always fails");
    });
    let violation = report.violation.expect("check(false) must fail the run");
    assert_eq!(violation.kind, ViolationKind::CheckFailed);
    assert!(violation.message.contains("always fails"));
}

#[test]
fn replay_reproduces_a_failing_seed() {
    let scenario = || {
        let data = Arc::new(RaceCell::new(0u64));
        let flag = Arc::new(AtomicU64::new(0));
        let writer = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            thread::spawn(move || {
                data.set(1);
                // ordering: deliberately wrong (the bug under test)
                flag.store(1, Ordering::Relaxed);
            })
        };
        // ordering: acquire side of the deliberately broken pair
        if flag.load(Ordering::Acquire) == 1 {
            let _ = data.get();
        }
        writer.join().unwrap();
    };
    let config = cfg("replay", 400);
    let report = model::explore(&config, scenario);
    let violation = report.violation.expect("must fail");
    let seed = violation.seed.expect("random-walk failure carries a seed");
    let replayed = model::replay(&config, seed, scenario).expect("same seed, same schedule");
    assert_eq!(replayed.kind, ViolationKind::DataRace);
    let rescheduled =
        model::run_schedule(&config, &violation.schedule, scenario).expect("schedule replays too");
    assert_eq!(rescheduled.kind, ViolationKind::DataRace);
}

#[test]
fn dfs_exhausts_small_scenarios_and_finds_planted_bug() {
    // clean scenario: DFS covers multiple distinct interleavings, no finding
    let clean = model::explore_dfs(&DfsConfig::new("dfs-clean"), || {
        let flag = Arc::new(AtomicU64::new(0));
        let t = {
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                // ordering: Release publishes thread completion
                flag.store(1, Ordering::Release);
            })
        };
        // ordering: pairs with the Release store above
        let _ = flag.load(Ordering::Acquire);
        t.join().unwrap();
    });
    assert!(clean.clean(), "violation: {:?}", clean.violation);
    assert!(
        clean.distinct_interleavings > 1,
        "DFS explored only one schedule"
    );

    // planted bug: DFS must find the racy interleaving deterministically
    let mut dfs = DfsConfig::new("dfs-bug");
    dfs.trace_dir = None;
    let buggy = model::explore_dfs(&dfs, || {
        let data = Arc::new(RaceCell::new(0u64));
        let flag = Arc::new(AtomicU64::new(0));
        let t = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            thread::spawn(move || {
                data.set(7);
                // ordering: deliberately wrong (the bug under test)
                flag.store(1, Ordering::Relaxed);
            })
        };
        // ordering: acquire side of the deliberately broken pair
        if flag.load(Ordering::Acquire) == 1 {
            let _ = data.get();
        }
        t.join().unwrap();
    });
    let violation = buggy.violation.expect("DFS must find the planted race");
    assert_eq!(violation.kind, ViolationKind::DataRace);
    assert!(violation.seed.is_none(), "DFS failures replay by schedule");
    assert!(!violation.schedule.is_empty());
}

#[test]
fn condvar_handoff_is_clean_under_dfs() {
    let report = model::explore_dfs(&DfsConfig::new("handoff"), || {
        let slot = Arc::new((Mutex::new(None::<u64>), Condvar::new()));
        let producer = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                let mut guard = slot.0.lock();
                *guard = Some(9);
                drop(guard);
                slot.1.notify_one();
            })
        };
        let mut guard = slot.0.lock();
        while guard.is_none() {
            guard = slot.1.wait(guard);
        }
        model::check(*guard == Some(9), "handoff delivers the value");
        drop(guard);
        producer.join().unwrap();
    });
    assert!(report.clean(), "violation: {:?}", report.violation);
}

#[test]
fn expected_panics_are_not_violations() {
    let mut config = cfg("allowed-panic", 20);
    config.allow_panic_from = vec!["doomed".to_string()];
    let report = model::explore(&config, || {
        let t = thread::Builder::new()
            .name("doomed-worker".to_string())
            .spawn(|| panic!("expected failure"))
            .unwrap();
        assert!(t.join().is_err(), "join must surface the panic");
    });
    assert!(
        report.clean(),
        "allowed panic reported: {:?}",
        report.violation
    );
}

#[test]
fn unexpected_panics_are_violations() {
    let report = model::explore(&cfg("panic", 5), || {
        let t = thread::spawn(|| panic!("boom"));
        let _ = t.join();
    });
    let violation = report.violation.expect("stray panic must be a violation");
    assert_eq!(violation.kind, ViolationKind::Panic);
    assert!(violation.message.contains("boom"));
}
