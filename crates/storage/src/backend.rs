//! Pluggable page-storage backends for [`crate::PagedStore`].
//!
//! The store itself is a *buffer manager*: it keeps a resident-page table and
//! an LRU buffer, and delegates what happens to a page when it leaves memory
//! to a [`StorageBackend`]:
//!
//! * [`MemoryBackend`] — the historical behaviour. Pages never leave the
//!   resident table, the LRU buffer is accounting-only, and the backend's
//!   persistence hooks are no-ops. Zero cost, zero I/O, the default.
//! * [`FileBackend`] — a real fixed-slot page file. Dirty pages evicted from
//!   the buffer are encoded via [`PageCodec`] and written to their slot;
//!   buffer misses on non-resident pages read the slot back. This is what
//!   lets a tree grow past RAM, and what makes `page_writes`/`sync_calls`
//!   in [`crate::IoStats`] report real I/O.
//!
//! The page *file* is a capacity story, not a durability story: slots are
//! rewritten in place with no ordering guarantees, so the file is only
//! meaningful while its store is alive. Crash durability is provided one
//! level up by the write-ahead log and checkpoints in [`crate::wal`].

use crate::store::PageId;
use std::fmt;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};

/// Errors surfaced by storage backends and the WAL machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An underlying I/O operation failed. The message carries the
    /// `std::io::Error` rendering plus the operation that failed.
    Io(String),
    /// A page payload did not fit in the backend's fixed slot size.
    PageOverflow {
        /// The page being written.
        page: PageId,
        /// Encoded payload size in bytes (excluding the slot header).
        size: usize,
        /// The backend's slot capacity in bytes (including the slot header).
        slot_size: usize,
    },
    /// Stored bytes failed validation (bad length, checksum or structure).
    Corrupt(String),
    /// The backend cannot satisfy the request (e.g. faulting a page from the
    /// in-memory backend, which never holds pages).
    Unsupported(&'static str),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(msg) => write!(f, "storage I/O error: {msg}"),
            StorageError::PageOverflow {
                page,
                size,
                slot_size,
            } => write!(
                f,
                "page {page} encodes to {size} bytes, exceeding the {slot_size}-byte slot"
            ),
            StorageError::Corrupt(msg) => write!(f, "corrupt stored data: {msg}"),
            StorageError::Unsupported(msg) => write!(f, "unsupported backend operation: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl StorageError {
    /// Wraps an `std::io::Error` with the operation that failed.
    pub fn io(op: &str, err: &std::io::Error) -> Self {
        StorageError::Io(format!("{op}: {err}"))
    }
}

/// Byte-level serialization of a page payload, required by backends that
/// store pages outside the resident table.
///
/// Implementations must round-trip exactly: `decode(encode(p)) == p` for any
/// payload the store is given, including floating-point coordinates
/// (bit-level, via `to_le_bytes`).
pub trait PageCodec: Sized {
    /// Appends the encoded payload to `buf`.
    fn encode_page(&self, buf: &mut Vec<u8>);
    /// Decodes a payload previously produced by [`PageCodec::encode_page`].
    fn decode_page(bytes: &[u8]) -> Result<Self, StorageError>;
}

/// Where pages live when they are not resident in the buffer manager.
///
/// `persist`/`fetch` move page contents across the memory/backing-store
/// boundary; `discard` releases a slot; `sync` is a durability barrier.
/// [`StorageBackend::is_persistent`] tells the store whether eviction is
/// meaningful at all: a non-persistent backend keeps every page resident and
/// the LRU buffer is pure accounting (the paper's simulated-disk mode).
pub trait StorageBackend<P>: fmt::Debug + Send {
    /// Writes the payload of `page` to backing storage.
    fn persist(&mut self, page: PageId, payload: &P) -> Result<(), StorageError>;
    /// Reads the payload of `page` back from backing storage.
    fn fetch(&mut self, page: PageId) -> Result<P, StorageError>;
    /// Releases any backing storage held for `page` (the slot may be reused).
    fn discard(&mut self, page: PageId);
    /// Flushes all written pages to durable storage.
    fn sync(&mut self) -> Result<(), StorageError>;
    /// `true` when evicted pages survive in backing storage and can be
    /// fetched back; `false` when the store must keep every page resident.
    fn is_persistent(&self) -> bool;
}

/// The historical in-memory mode: pages only ever live in the store's
/// resident table, so every backend hook is a no-op and [`StorageBackend::fetch`]
/// is unreachable (the store never evicts payloads under this backend).
#[derive(Debug, Default, Clone, Copy)]
pub struct MemoryBackend;

impl<P> StorageBackend<P> for MemoryBackend {
    fn persist(&mut self, _page: PageId, _payload: &P) -> Result<(), StorageError> {
        Ok(())
    }

    fn fetch(&mut self, _page: PageId) -> Result<P, StorageError> {
        Err(StorageError::Unsupported(
            "the in-memory backend never holds pages; fetch is unreachable",
        ))
    }

    fn discard(&mut self, _page: PageId) {}

    fn sync(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    fn is_persistent(&self) -> bool {
        false
    }
}

/// Per-slot header: payload length (u32) + FNV-1a checksum of the payload
/// (u64), both little-endian.
const SLOT_HEADER: usize = 4 + 8;

/// 64-bit FNV-1a hash, used as the integrity checksum for page slots and WAL
/// records (no external crc crate; the offline build has no such dependency).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// A fixed-slot page file: page `i` lives at byte offset `i * slot_size`.
///
/// Each slot stores `[len: u32 LE][fnv1a64(payload): u64 LE][payload]`; the
/// checksum guards against torn slot writes being silently decoded. The file
/// is created from scratch (`create` truncates) — see the module docs for why
/// the page file is not a durability mechanism.
pub struct FileBackend<P> {
    file: File,
    path: PathBuf,
    slot_size: usize,
    scratch: Vec<u8>,
    _payload: PhantomData<fn() -> P>,
}

impl<P> fmt::Debug for FileBackend<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileBackend")
            .field("path", &self.path)
            .field("slot_size", &self.slot_size)
            .finish()
    }
}

impl<P> FileBackend<P> {
    /// Creates (truncating) a page file at `path` with the given slot size in
    /// bytes. Use [`crate::PAGE_SIZE`] unless the payload needs more room.
    pub fn create(path: impl AsRef<Path>, slot_size: usize) -> Result<Self, StorageError> {
        let path = path.as_ref().to_path_buf();
        assert!(
            slot_size > SLOT_HEADER,
            "slot size {slot_size} leaves no room for a payload"
        );
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| StorageError::io(&format!("create page file {}", path.display()), &e))?;
        Ok(Self {
            file,
            path,
            slot_size,
            scratch: Vec::with_capacity(slot_size),
            _payload: PhantomData,
        })
    }

    /// The slot size in bytes.
    pub fn slot_size(&self) -> usize {
        self.slot_size
    }

    /// The path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn slot_offset(&self, page: PageId) -> u64 {
        page.raw() * self.slot_size as u64
    }
}

impl<P: PageCodec> StorageBackend<P> for FileBackend<P> {
    fn persist(&mut self, page: PageId, payload: &P) -> Result<(), StorageError> {
        self.scratch.clear();
        self.scratch.extend_from_slice(&[0u8; SLOT_HEADER]);
        payload.encode_page(&mut self.scratch);
        let len = self.scratch.len() - SLOT_HEADER;
        if self.scratch.len() > self.slot_size {
            return Err(StorageError::PageOverflow {
                page,
                size: len,
                slot_size: self.slot_size,
            });
        }
        let crc = fnv1a64(&self.scratch[SLOT_HEADER..]);
        self.scratch[0..4].copy_from_slice(&(len as u32).to_le_bytes());
        self.scratch[4..12].copy_from_slice(&crc.to_le_bytes());
        let offset = self.slot_offset(page);
        self.file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.file.write_all(&self.scratch))
            .map_err(|e| StorageError::io(&format!("write page {page}"), &e))?;
        Ok(())
    }

    fn fetch(&mut self, page: PageId) -> Result<P, StorageError> {
        let offset = self.slot_offset(page);
        let mut header = [0u8; SLOT_HEADER];
        self.file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.file.read_exact(&mut header))
            .map_err(|e| StorageError::io(&format!("read page {page} header"), &e))?;
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        if SLOT_HEADER + len > self.slot_size {
            return Err(StorageError::Corrupt(format!(
                "page {page} claims {len} payload bytes in a {}-byte slot",
                self.slot_size
            )));
        }
        let want_crc = u64::from_le_bytes([
            header[4], header[5], header[6], header[7], header[8], header[9], header[10],
            header[11],
        ]);
        self.scratch.clear();
        self.scratch.resize(len, 0);
        self.file
            .read_exact(&mut self.scratch)
            .map_err(|e| StorageError::io(&format!("read page {page} payload"), &e))?;
        if fnv1a64(&self.scratch) != want_crc {
            return Err(StorageError::Corrupt(format!(
                "page {page} failed its checksum"
            )));
        }
        P::decode_page(&self.scratch)
    }

    fn discard(&mut self, _page: PageId) {
        // slots are reused via the store's free list; no file work needed
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.file
            .sync_data()
            .map_err(|e| StorageError::io("sync page file", &e))
    }

    fn is_persistent(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy payload for backend tests.
    #[derive(Debug, Clone, PartialEq)]
    struct Blob(Vec<u8>);

    impl PageCodec for Blob {
        fn encode_page(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.0);
        }

        fn decode_page(bytes: &[u8]) -> Result<Self, StorageError> {
            Ok(Blob(bytes.to_vec()))
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "pref_storage_backend_{}_{name}",
            std::process::id()
        ));
        p
    }

    #[test]
    fn file_backend_roundtrips_pages() {
        let path = temp_path("roundtrip");
        let mut be: FileBackend<Blob> = FileBackend::create(&path, 64).unwrap();
        let a = Blob(vec![1, 2, 3]);
        let b = Blob(vec![9; 40]);
        be.persist(PageId::new(0), &a).unwrap();
        be.persist(PageId::new(5), &b).unwrap();
        assert_eq!(be.fetch(PageId::new(0)).unwrap(), a);
        assert_eq!(be.fetch(PageId::new(5)).unwrap(), b);
        // overwrite in place
        let a2 = Blob(vec![7, 7]);
        be.persist(PageId::new(0), &a2).unwrap();
        assert_eq!(be.fetch(PageId::new(0)).unwrap(), a2);
        be.sync().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_backend_rejects_oversized_payloads() {
        let path = temp_path("overflow");
        let mut be: FileBackend<Blob> = FileBackend::create(&path, 32).unwrap();
        let big = Blob(vec![0; 64]);
        let err = be.persist(PageId::new(1), &big).unwrap_err();
        assert!(matches!(err, StorageError::PageOverflow { size: 64, .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_backend_detects_slot_corruption() {
        use std::io::{Seek, SeekFrom, Write};
        let path = temp_path("corrupt");
        let mut be: FileBackend<Blob> = FileBackend::create(&path, 64).unwrap();
        be.persist(PageId::new(0), &Blob(vec![5; 16])).unwrap();
        be.sync().unwrap();
        // flip a payload byte behind the backend's back
        let mut f = File::options().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(SLOT_HEADER as u64)).unwrap();
        f.write_all(&[0xFF]).unwrap();
        f.sync_data().unwrap();
        let err = be.fetch(PageId::new(0)).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn memory_backend_never_fetches() {
        let mut be = MemoryBackend;
        assert!(StorageBackend::<Blob>::persist(&mut be, PageId::new(0), &Blob(vec![])).is_ok());
        assert!(!StorageBackend::<Blob>::is_persistent(&be));
        assert!(matches!(
            StorageBackend::<Blob>::fetch(&mut be, PageId::new(0)),
            Err(StorageError::Unsupported(_))
        ));
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // published FNV-1a test vectors
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
