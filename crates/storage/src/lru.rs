//! A constant-time LRU buffer pool over page identifiers.

use crate::store::PageId;
use std::collections::HashMap;

const NIL: usize = usize::MAX;

/// One frame of the intrusive doubly-linked LRU list.
#[derive(Debug, Clone, Copy)]
struct Frame {
    page: PageId,
    prev: usize,
    next: usize,
}

/// An LRU buffer pool that tracks *which* pages are resident.
///
/// The simulation never needs the page bytes (they live in the
/// [`crate::PagedStore`] anyway); the buffer only decides whether an access is
/// a hit or a miss, exactly like the paper's "LRU memory buffer with default
/// size 2% of the tree size". All operations are O(1).
///
/// A capacity of zero models the no-buffer configuration of Figure 13: every
/// access is a miss.
#[derive(Debug, Clone)]
pub struct LruBuffer {
    capacity: usize,
    frames: Vec<Frame>,
    free: Vec<usize>,
    /// page id -> frame index
    map: HashMap<PageId, usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl LruBuffer {
    /// Creates a buffer with room for `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            frames: Vec::with_capacity(capacity.min(1024)),
            free: Vec::new(),
            map: HashMap::with_capacity(capacity.min(1024)),
            head: NIL,
            tail: NIL,
        }
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `true` iff the page is currently resident (does not touch recency).
    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    /// Records an access to `page`; returns `true` on a buffer hit and
    /// `false` on a miss (after which the page becomes resident, possibly
    /// evicting the least recently used page).
    pub fn access(&mut self, page: PageId) -> bool {
        self.access_evicting(page).0
    }

    /// Like [`LruBuffer::access`], but also reports the page evicted to make
    /// room (if any) so a buffer manager can write back its contents.
    pub fn access_evicting(&mut self, page: PageId) -> (bool, Option<PageId>) {
        if self.capacity == 0 {
            return (false, None);
        }
        if let Some(&idx) = self.map.get(&page) {
            self.move_to_front(idx);
            return (true, None);
        }
        // miss: admit, evicting if full
        let victim = if self.map.len() >= self.capacity {
            self.evict_lru()
        } else {
            None
        };
        let idx = self.alloc_frame(page);
        self.push_front(idx);
        self.map.insert(page, idx);
        (false, victim)
    }

    /// Removes a page from the buffer (e.g. when the page is freed on disk).
    /// Returns `true` if the page was resident.
    pub fn invalidate(&mut self, page: PageId) -> bool {
        if let Some(idx) = self.map.remove(&page) {
            self.unlink(idx);
            self.free.push(idx);
            true
        } else {
            false
        }
    }

    /// Empties the buffer.
    pub fn clear(&mut self) {
        self.map.clear();
        self.frames.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Changes the capacity; if shrinking, least recently used pages are
    /// evicted until the new capacity is respected.
    pub fn set_capacity(&mut self, capacity: usize) {
        let mut evicted = Vec::new();
        self.set_capacity_evicting(capacity, &mut evicted);
    }

    /// Like [`LruBuffer::set_capacity`], appending every evicted page to
    /// `evicted` (least recently used first) for write-back by the caller.
    pub fn set_capacity_evicting(&mut self, capacity: usize, evicted: &mut Vec<PageId>) {
        self.capacity = capacity;
        while self.map.len() > self.capacity {
            if let Some(page) = self.evict_lru() {
                evicted.push(page);
            }
        }
    }

    /// Pages currently resident ordered from most to least recently used.
    /// Intended for tests and debugging.
    pub fn resident_mru_order(&self) -> Vec<PageId> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.frames[cur].page);
            cur = self.frames[cur].next;
        }
        out
    }

    fn alloc_frame(&mut self, page: PageId) -> usize {
        if let Some(idx) = self.free.pop() {
            self.frames[idx] = Frame {
                page,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            self.frames.push(Frame {
                page,
                prev: NIL,
                next: NIL,
            });
            self.frames.len() - 1
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let Frame { prev, next, .. } = self.frames[idx];
        if prev != NIL {
            self.frames[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.frames[idx].prev = NIL;
        self.frames[idx].next = NIL;
    }

    fn move_to_front(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn evict_lru(&mut self) -> Option<PageId> {
        let victim = self.tail;
        if victim == NIL {
            return None;
        }
        let page = self.frames[victim].page;
        self.unlink(victim);
        self.map.remove(&page);
        self.free.push(victim);
        Some(page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> PageId {
        PageId::new(n)
    }

    #[test]
    fn zero_capacity_always_misses() {
        let mut b = LruBuffer::new(0);
        assert!(!b.access(pid(1)));
        assert!(!b.access(pid(1)));
        assert!(b.is_empty());
    }

    #[test]
    fn hit_after_admit() {
        let mut b = LruBuffer::new(2);
        assert!(!b.access(pid(1)));
        assert!(b.access(pid(1)));
        assert_eq!(b.len(), 1);
        assert!(b.contains(pid(1)));
        assert!(!b.contains(pid(2)));
    }

    #[test]
    fn eviction_follows_lru_order() {
        let mut b = LruBuffer::new(2);
        b.access(pid(1));
        b.access(pid(2));
        // touch 1 so 2 becomes the LRU victim
        assert!(b.access(pid(1)));
        assert!(!b.access(pid(3))); // evicts 2
        assert!(b.contains(pid(1)));
        assert!(!b.contains(pid(2)));
        assert!(b.contains(pid(3)));
        assert_eq!(b.resident_mru_order(), vec![pid(3), pid(1)]);
    }

    #[test]
    fn invalidate_frees_a_slot() {
        let mut b = LruBuffer::new(1);
        b.access(pid(7));
        assert!(b.invalidate(pid(7)));
        assert!(!b.invalidate(pid(7)));
        assert!(b.is_empty());
        assert!(!b.access(pid(8)));
        assert!(b.contains(pid(8)));
    }

    #[test]
    fn set_capacity_shrinks_by_evicting_lru() {
        let mut b = LruBuffer::new(4);
        for i in 0..4 {
            b.access(pid(i));
        }
        b.set_capacity(2);
        assert_eq!(b.len(), 2);
        // the two most recently used remain
        assert!(b.contains(pid(2)));
        assert!(b.contains(pid(3)));
        assert_eq!(b.capacity(), 2);
    }

    #[test]
    fn clear_empties_everything() {
        let mut b = LruBuffer::new(3);
        for i in 0..3 {
            b.access(pid(i));
        }
        b.clear();
        assert!(b.is_empty());
        assert!(!b.access(pid(0)));
    }

    #[test]
    fn sequential_scan_larger_than_buffer_never_hits() {
        // classic LRU pathological case: cyclic scan of capacity+1 pages
        let mut b = LruBuffer::new(3);
        let mut hits = 0;
        for _ in 0..5 {
            for i in 0..4 {
                if b.access(pid(i)) {
                    hits += 1;
                }
            }
        }
        assert_eq!(hits, 0);
    }

    #[test]
    fn reuse_of_freed_frames_keeps_list_consistent() {
        let mut b = LruBuffer::new(3);
        for i in 0..3 {
            b.access(pid(i));
        }
        b.invalidate(pid(1));
        b.access(pid(10));
        b.access(pid(0)); // move to front
        assert_eq!(b.resident_mru_order(), vec![pid(0), pid(10), pid(2)]);
        b.access(pid(11)); // evicts 2
        assert_eq!(b.resident_mru_order(), vec![pid(11), pid(0), pid(10)]);
    }

    #[test]
    fn access_evicting_reports_the_victim() {
        let mut b = LruBuffer::new(2);
        assert_eq!(b.access_evicting(pid(1)), (false, None));
        assert_eq!(b.access_evicting(pid(2)), (false, None));
        assert_eq!(b.access_evicting(pid(1)), (true, None));
        // buffer full, 2 is LRU: admitting 3 must evict 2
        assert_eq!(b.access_evicting(pid(3)), (false, Some(pid(2))));
        let mut evicted = Vec::new();
        b.set_capacity_evicting(0, &mut evicted);
        // LRU-first: 1 was less recently used than 3
        assert_eq!(evicted, vec![pid(1), pid(3)]);
    }

    #[test]
    fn randomized_against_reference_model() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let mut lru = LruBuffer::new(8);
        // reference: Vec ordered MRU-first
        let mut model: Vec<u64> = Vec::new();
        for _ in 0..20_000 {
            let page = rng.gen_range(0..32u64);
            let expect_hit = model.contains(&page);
            let hit = lru.access(pid(page));
            assert_eq!(hit, expect_hit, "divergence on page {page}");
            model.retain(|&p| p != page);
            model.insert(0, page);
            model.truncate(8);
        }
        let got = lru.resident_mru_order();
        let want: Vec<PageId> = model.iter().map(|&p| pid(p)).collect();
        assert_eq!(got, want);
    }
}
