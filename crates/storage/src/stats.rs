//! I/O statistics counters.

use serde::{Deserialize, Serialize};

/// Counters describing the I/O behaviour of a [`crate::PagedStore`].
///
/// * a *logical read* is any node/page access performed by an algorithm;
/// * a *buffer hit* is a logical read satisfied by the LRU buffer;
/// * a *physical read* is a logical read that missed the buffer — this is the
///   paper's "I/O accesses" metric;
/// * *physical writes* count page allocations and updates flushed to the
///   simulated disk (structure modifications by insert/delete);
/// * *page writes* count pages actually pushed to a persistent
///   [`crate::StorageBackend`] (dirty evictions and explicit flushes) —
///   always zero for the in-memory backend;
/// * *sync calls* count durability barriers (`fsync`-like) issued to a
///   persistent backend.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoStats {
    /// Total page accesses requested by algorithms.
    pub logical_reads: u64,
    /// Accesses satisfied by the buffer pool.
    pub buffer_hits: u64,
    /// Accesses that had to touch the simulated disk.
    pub physical_reads: u64,
    /// Pages written (allocations and in-place updates).
    pub physical_writes: u64,
    /// Pages allocated over the lifetime of the store.
    pub pages_allocated: u64,
    /// Pages freed over the lifetime of the store.
    pub pages_freed: u64,
    /// Freed pages that were resident in the LRU buffer and had to be
    /// invalidated (a stale frame served after a free would be a correctness
    /// bug, not just an accounting one).
    pub buffer_invalidations: u64,
    /// Pages written back to a persistent backend (dirty evictions plus
    /// explicit flushes). Unlike the read counters this is never suspended by
    /// accounting pauses: it reports real I/O, not modelled cost.
    #[serde(default)]
    pub page_writes: u64,
    /// Durability barriers (`fsync`-like calls) issued to the backend.
    #[serde(default)]
    pub sync_calls: u64,
}

impl IoStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The paper's headline metric: accesses not absorbed by the buffer.
    #[inline]
    pub fn io_accesses(&self) -> u64 {
        self.physical_reads
    }

    /// Buffer hit ratio in `[0, 1]`; zero when nothing was read.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            0.0
        } else {
            self.buffer_hits as f64 / self.logical_reads as f64
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Adds another counter set into this one (useful when aggregating the
    /// stats of several stores, e.g. an object tree plus a function tree).
    pub fn merge(&mut self, other: &IoStats) {
        self.logical_reads += other.logical_reads;
        self.buffer_hits += other.buffer_hits;
        self.physical_reads += other.physical_reads;
        self.physical_writes += other.physical_writes;
        self.pages_allocated += other.pages_allocated;
        self.pages_freed += other.pages_freed;
        self.buffer_invalidations += other.buffer_invalidations;
        self.page_writes += other.page_writes;
        self.sync_calls += other.sync_calls;
    }

    /// Returns the difference `self - baseline` counter-by-counter, saturating
    /// at zero. Useful for measuring a single phase of a longer run.
    pub fn since(&self, baseline: &IoStats) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads.saturating_sub(baseline.logical_reads),
            buffer_hits: self.buffer_hits.saturating_sub(baseline.buffer_hits),
            physical_reads: self.physical_reads.saturating_sub(baseline.physical_reads),
            physical_writes: self
                .physical_writes
                .saturating_sub(baseline.physical_writes),
            pages_allocated: self
                .pages_allocated
                .saturating_sub(baseline.pages_allocated),
            pages_freed: self.pages_freed.saturating_sub(baseline.pages_freed),
            buffer_invalidations: self
                .buffer_invalidations
                .saturating_sub(baseline.buffer_invalidations),
            page_writes: self.page_writes.saturating_sub(baseline.page_writes),
            sync_calls: self.sync_calls.saturating_sub(baseline.sync_calls),
        }
    }
}

impl std::fmt::Display for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "io={} (logical={}, hits={}, hit-ratio={:.1}%), writes={}, page-writes={}, syncs={}",
            self.physical_reads,
            self.logical_reads,
            self.buffer_hits,
            self.hit_ratio() * 100.0,
            self.physical_writes,
            self.page_writes,
            self.sync_calls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_handles_zero_reads() {
        let s = IoStats::new();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.io_accesses(), 0);
    }

    #[test]
    fn merge_and_since_are_inverse_like() {
        let mut a = IoStats {
            logical_reads: 10,
            buffer_hits: 4,
            physical_reads: 6,
            physical_writes: 2,
            pages_allocated: 1,
            ..IoStats::new()
        };
        let b = IoStats {
            logical_reads: 5,
            buffer_hits: 5,
            physical_writes: 1,
            pages_freed: 1,
            buffer_invalidations: 1,
            page_writes: 2,
            sync_calls: 1,
            ..IoStats::new()
        };
        let before = a;
        a.merge(&b);
        assert_eq!(a.logical_reads, 15);
        assert_eq!(a.buffer_hits, 9);
        let delta = a.since(&before);
        assert_eq!(delta, b);
    }

    #[test]
    fn since_saturates() {
        let a = IoStats::new();
        let b = IoStats {
            logical_reads: 3,
            ..IoStats::new()
        };
        assert_eq!(a.since(&b).logical_reads, 0);
    }

    #[test]
    fn display_shows_headline_metric() {
        let s = IoStats {
            logical_reads: 100,
            buffer_hits: 60,
            physical_reads: 40,
            physical_writes: 3,
            page_writes: 7,
            ..IoStats::new()
        };
        let text = s.to_string();
        assert!(text.contains("io=40"));
        assert!(text.contains("60.0%"));
        assert!(text.contains("page-writes=7"));
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = IoStats {
            logical_reads: 1,
            buffer_hits: 1,
            physical_reads: 1,
            physical_writes: 1,
            pages_allocated: 1,
            pages_freed: 1,
            buffer_invalidations: 1,
            page_writes: 1,
            sync_calls: 1,
        };
        s.reset();
        assert_eq!(s, IoStats::new());
    }
}
