//! Simulated disk storage for the fair-assignment library.
//!
//! The VLDB 2009 paper evaluates its algorithms by the number of R-tree node
//! accesses that are not absorbed by an LRU buffer ("I/O accesses", with a
//! buffer whose default size is 2% of the tree). This crate provides the
//! machinery to reproduce that accounting without a real disk:
//!
//! * [`PagedStore`] — a buffer manager over fixed-size pages addressed by
//!   [`PageId`], standing in for the disk file that holds the R-tree,
//! * [`StorageBackend`] — where pages live when they are not resident:
//!   [`MemoryBackend`] (the historical zero-cost simulation) or
//!   [`FileBackend`] (a real page file, so data sets can exceed RAM),
//! * [`LruBuffer`] — an LRU buffer pool over page identifiers,
//! * [`IoStats`] — logical/physical read and write counters,
//! * [`PeakTracker`] — a peak-memory gauge for the in-memory search structures
//!   (priority queues, pruned lists, TA states) that the paper reports as
//!   "memory usage",
//! * [`wal`] — write-ahead-log and checkpoint file primitives used by the
//!   service tier's per-shard durability.
//!
//! The store is generic over the page payload so the R-tree crate can store
//! its node type directly; the in-memory simulation only needs to know
//! *which* page is touched, while the file backend serializes payloads via
//! [`PageCodec`]. [`PAGE_SIZE`] documents the page size used to derive R-tree
//! fanout.
//!
//! This crate is the only place in the workspace allowed to touch `std::fs`
//! (enforced by the xtask `no-raw-fs` lint): every other crate goes through
//! the backends or the [`wal`] helpers, keeping file-descriptor lifetimes and
//! fsync ordering auditable in one spot.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod backend;
mod lru;
mod stats;
mod store;
mod tracker;
pub mod wal;

pub use backend::{fnv1a64, FileBackend, MemoryBackend, PageCodec, StorageBackend, StorageError};
pub use lru::LruBuffer;
pub use stats::IoStats;
pub use store::{PageId, PagedStore};
pub use tracker::{cost, PeakTracker};

/// Simulated page size in bytes (the paper uses 4 KByte pages).
pub const PAGE_SIZE: usize = 4096;

/// Size in bytes of one stored coordinate (an `f64`).
pub const COORD_SIZE: usize = 8;

/// Size in bytes of a child-pointer / record identifier within a page.
pub const POINTER_SIZE: usize = 8;

/// Computes the maximum number of R-tree entries that fit in one page for a
/// given dimensionality: each entry stores an MBR (2·D coordinates) plus a
/// pointer, and the page keeps a small header.
///
/// ```
/// assert_eq!(pref_storage::entries_per_page(4), 56);
/// assert!(pref_storage::entries_per_page(6) >= 30);
/// ```
pub fn entries_per_page(dims: usize) -> usize {
    const PAGE_HEADER: usize = 32;
    let entry_size = 2 * dims * COORD_SIZE + POINTER_SIZE;
    ((PAGE_SIZE - PAGE_HEADER) / entry_size).max(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_per_page_matches_paper_scale() {
        // 4 KiB pages, D = 4: entry = 4*2*8 + 8 = 72 bytes -> 56 entries.
        assert_eq!(entries_per_page(4), 56);
        // Higher dimensionality means lower fanout (the dimensionality curse).
        assert!(entries_per_page(3) > entries_per_page(4));
        assert!(entries_per_page(4) > entries_per_page(6));
        // Degenerate dimensionalities still give a usable fanout.
        assert!(entries_per_page(100) >= 4);
    }
}
