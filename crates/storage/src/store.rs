//! The paged store: a buffer manager over a pluggable storage backend.

use crate::backend::{MemoryBackend, StorageBackend, StorageError};
use crate::{IoStats, LruBuffer};
use serde::{Deserialize, Serialize};

/// Identifier of a page in a [`PagedStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageId(u64);

impl PageId {
    /// Creates a page id from a raw index.
    pub fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw index.
    pub fn raw(self) -> u64 {
        self.0
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A buffer manager over fixed-size pages stored in a [`StorageBackend`].
///
/// Every read goes through an [`LruBuffer`]; reads that miss the buffer are
/// counted as physical I/O in [`IoStats`], reproducing the paper's
/// measurement methodology. With the default in-memory backend the buffer is
/// accounting-only and every page stays resident (the historical simulated
/// disk). With a persistent backend (see [`crate::FileBackend`]) the buffer
/// capacity is real: dirty pages evicted from the buffer are written back to
/// the backend and faulted in again on the next access, so the data set can
/// exceed the configured buffer — and RAM.
///
/// The store deliberately does not implement `Clone`: deep-cloning a
/// disk-backed store would silently copy an entire page file (or worse, alias
/// it). Use [`PagedStore::fork_in_memory`] to materialize an explicit
/// in-memory copy.
#[derive(Debug)]
pub struct PagedStore<P> {
    /// Resident payloads. `None` for freed slots and (under a persistent
    /// backend) for live pages currently evicted to the backend.
    pages: Vec<Option<P>>,
    /// Which slots hold live (allocated, not freed) pages.
    live: Vec<bool>,
    /// Which resident payloads differ from their backend copy.
    dirty: Vec<bool>,
    live_count: usize,
    free_list: Vec<PageId>,
    buffer: LruBuffer,
    stats: IoStats,
    /// When `true`, reads bypass the hit/miss accounting entirely. Used while
    /// bulk-loading a tree, whose construction cost the paper does not charge
    /// to the assignment algorithms. Real backend I/O (`page_writes`,
    /// `sync_calls`) is still counted: it happens regardless of what the cost
    /// model charges.
    accounting_paused: bool,
    backend: Box<dyn StorageBackend<P>>,
    /// Cached `backend.is_persistent()` so the hot read path never pays a
    /// virtual call for the in-memory default.
    persistent: bool,
}

impl<P> PagedStore<P> {
    /// Creates an empty in-memory store whose buffer holds `buffer_frames`
    /// pages. Semantically identical to the pre-backend store: pages never
    /// leave memory and the buffer only decides hit/miss accounting.
    pub fn new(buffer_frames: usize) -> Self {
        Self::with_backend(Box::new(MemoryBackend), buffer_frames)
    }

    /// Creates an empty store over an explicit backend.
    ///
    /// # Panics
    /// Panics if the backend is persistent and `buffer_frames` is zero: a
    /// persistent store must be able to keep at least the page being accessed
    /// resident.
    pub fn with_backend(backend: Box<dyn StorageBackend<P>>, buffer_frames: usize) -> Self {
        let persistent = backend.is_persistent();
        assert!(
            !persistent || buffer_frames >= 1,
            "a persistent backend needs at least one buffer frame"
        );
        Self {
            pages: Vec::new(),
            live: Vec::new(),
            dirty: Vec::new(),
            live_count: 0,
            free_list: Vec::new(),
            buffer: LruBuffer::new(buffer_frames),
            stats: IoStats::new(),
            accounting_paused: false,
            backend,
            persistent,
        }
    }

    /// `true` when evicted pages survive in the backend (i.e. the buffer
    /// capacity is real, not accounting-only).
    pub fn is_persistent(&self) -> bool {
        self.persistent
    }

    /// Number of live (allocated and not freed) pages.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// `true` when the store holds no live pages.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Total number of page slots ever allocated (including freed ones);
    /// page ids are never reused for a *different* role while freed slots
    /// remain on the free list.
    pub fn capacity(&self) -> usize {
        self.pages.len()
    }

    /// The I/O statistics accumulated so far.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the I/O statistics (the buffer contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Clears the buffer pool (all pages become non-resident). Under a
    /// persistent backend, dirty pages are written back first.
    pub fn clear_buffer(&mut self) {
        if self.persistent {
            let resident = self.buffer.resident_mru_order();
            for page in resident {
                self.evict_payload(page);
            }
        }
        self.buffer.clear();
    }

    /// Sets the buffer capacity in frames; shrinking evicts LRU pages
    /// (writing dirty ones back under a persistent backend).
    ///
    /// # Panics
    /// Panics when asked to shrink a persistent store's buffer to zero.
    pub fn set_buffer_frames(&mut self, frames: usize) {
        assert!(
            !self.persistent || frames >= 1,
            "a persistent backend needs at least one buffer frame"
        );
        let mut evicted = Vec::new();
        self.buffer.set_capacity_evicting(frames, &mut evicted);
        for page in evicted {
            self.evict_payload(page);
        }
    }

    /// Sets the buffer capacity as a fraction of the current number of live
    /// pages (the paper's "buffer size 2% of the tree size"). A fraction of
    /// zero disables the buffer (in-memory backend only: a persistent store
    /// keeps at least one frame).
    ///
    /// # Panics
    /// Panics on a fraction outside `[0, 1]` (or NaN): a negative fraction
    /// would silently disable the buffer and a fraction above 1 would
    /// silently make it larger than the store, mis-shaping every I/O
    /// measurement downstream.
    pub fn set_buffer_fraction(&mut self, fraction: f64) {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "buffer fraction must lie in [0, 1], got {fraction}"
        );
        let mut frames = (fraction * self.len() as f64).round() as usize;
        if self.persistent {
            frames = frames.max(1);
        }
        self.set_buffer_frames(frames);
    }

    /// Current buffer capacity in frames.
    pub fn buffer_frames(&self) -> usize {
        self.buffer.capacity()
    }

    /// Runs `body` with hit/miss accounting suspended (e.g. during bulk load).
    pub fn with_accounting_paused<R>(&mut self, body: impl FnOnce(&mut Self) -> R) -> R {
        let was = self.accounting_paused;
        self.accounting_paused = true;
        let out = body(self);
        self.accounting_paused = was;
        out
    }

    /// Allocates a new page containing `payload` and returns its id.
    pub fn allocate(&mut self, payload: P) -> PageId {
        self.stats.pages_allocated += 1;
        if !self.accounting_paused {
            self.stats.physical_writes += 1;
        }
        let id = if let Some(id) = self.free_list.pop() {
            self.pages[id.index()] = Some(payload);
            self.live[id.index()] = true;
            id
        } else {
            self.pages.push(Some(payload));
            self.live.push(true);
            self.dirty.push(false);
            PageId::new((self.pages.len() - 1) as u64)
        };
        self.live_count += 1;
        if self.persistent {
            // the fresh payload is resident and unwritten: admit it to the
            // buffer so eviction (write-back) can ever reach it
            self.dirty[id.index()] = true;
            let (_, victim) = self.buffer.access_evicting(id);
            if let Some(victim) = victim {
                self.evict_payload(victim);
            }
        }
        id
    }

    /// Frees a page. Its slot may be reused by later allocations.
    ///
    /// # Panics
    /// Panics if the page is not live.
    pub fn free(&mut self, id: PageId) {
        assert!(
            self.live.get(id.index()).copied() == Some(true),
            "free of unknown or double-freed page {id}"
        );
        self.pages[id.index()] = None;
        self.live[id.index()] = false;
        self.dirty[id.index()] = false;
        self.live_count -= 1;
        self.stats.pages_freed += 1;
        if self.buffer.invalidate(id) {
            self.stats.buffer_invalidations += 1;
        }
        if self.persistent {
            self.backend.discard(id);
        }
        self.free_list.push(id);
    }

    /// Reads a page, charging a logical access and (on a buffer miss) a
    /// physical read. Under a persistent backend a miss on a non-resident
    /// page faults it in from the backend.
    ///
    /// # Panics
    /// Panics if the page is not live, or if the backend fails to produce a
    /// page it previously persisted (storage failure is unrecoverable for the
    /// in-process index).
    pub fn read(&mut self, id: PageId) -> &P {
        self.touch(id, false);
        self.pages[id.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("read of freed page {id}"))
    }

    /// Reads a page mutably (same accounting as [`PagedStore::read`], plus a
    /// physical write, since the caller is going to modify the page).
    pub fn read_mut(&mut self, id: PageId) -> &mut P {
        self.touch(id, true);
        if !self.accounting_paused {
            self.stats.physical_writes += 1;
        }
        self.pages[id.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("read_mut of freed page {id}"))
    }

    /// Peeks at a *resident* page without touching the buffer or the
    /// counters. Intended for validation, debugging and test oracles only.
    /// Under a persistent backend a live page may be evicted and return
    /// `None` here; use [`PagedStore::read_unaccounted`] to force residency.
    pub fn peek(&self, id: PageId) -> Option<&P> {
        self.pages.get(id.index()).and_then(|p| p.as_ref())
    }

    /// Reads a page without charging the cost model (the buffer is still
    /// warmed and backend faults still happen). Intended for validation and
    /// snapshot extraction, where the paper's accounting does not apply.
    ///
    /// # Panics
    /// Same as [`PagedStore::read`].
    pub fn read_unaccounted(&mut self, id: PageId) -> &P {
        self.with_accounting_paused(|s| {
            s.touch(id, false);
        });
        self.pages[id.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("read of freed page {id}"))
    }

    /// Replaces the payload of a live page, charging a physical write.
    pub fn write(&mut self, id: PageId, payload: P) {
        assert!(
            self.live.get(id.index()).copied() == Some(true),
            "write of unknown or freed page {id}"
        );
        self.pages[id.index()] = Some(payload);
        if !self.accounting_paused {
            self.stats.physical_writes += 1;
        }
        if self.persistent {
            self.dirty[id.index()] = true;
            let (_, victim) = self.buffer.access_evicting(id);
            if let Some(victim) = victim {
                self.evict_payload(victim);
            }
        }
    }

    /// Writes every dirty resident page back to the backend and issues a
    /// durability barrier. A no-op for the in-memory backend.
    pub fn flush(&mut self) -> Result<(), StorageError> {
        if !self.persistent {
            return Ok(());
        }
        for i in 0..self.pages.len() {
            if !self.dirty[i] {
                continue;
            }
            let id = PageId::new(i as u64);
            if let Some(payload) = self.pages[i].as_ref() {
                self.backend.persist(id, payload)?;
                self.stats.page_writes += 1;
                self.dirty[i] = false;
            }
        }
        self.sync()
    }

    /// Issues a durability barrier on the backend (fsync-like). A no-op for
    /// the in-memory backend.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        if !self.persistent {
            return Ok(());
        }
        self.backend.sync()?;
        self.stats.sync_calls += 1;
        Ok(())
    }

    /// Identifiers of all live pages (ascending). Intended for validation.
    pub fn live_pages(&self) -> Vec<PageId> {
        self.live
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l)
            .map(|(i, _)| PageId::new(i as u64))
            .collect()
    }

    /// Materializes an explicit in-memory copy of this store: every live page
    /// (resident or evicted) is cloned into a fresh store with the in-memory
    /// backend, preserving page ids, buffer capacity/recency and statistics.
    ///
    /// This replaces the old derived `Clone`, which under a persistent
    /// backend would have aliased or half-copied the page file.
    pub fn fork_in_memory(&mut self) -> PagedStore<P>
    where
        P: Clone,
    {
        let mut pages: Vec<Option<P>> = Vec::with_capacity(self.pages.len());
        for i in 0..self.pages.len() {
            if !self.live[i] {
                pages.push(None);
                continue;
            }
            let payload = match &self.pages[i] {
                Some(p) => p.clone(),
                None => {
                    let id = PageId::new(i as u64);
                    self.backend
                        .fetch(id)
                        .unwrap_or_else(|e| panic!("fork_in_memory could not fault page {id}: {e}"))
                }
            };
            pages.push(Some(payload));
        }
        PagedStore {
            pages,
            live: self.live.clone(),
            dirty: vec![false; self.dirty.len()],
            live_count: self.live_count,
            free_list: self.free_list.clone(),
            buffer: self.buffer.clone(),
            stats: self.stats,
            accounting_paused: self.accounting_paused,
            backend: Box::new(MemoryBackend),
            persistent: false,
        }
    }

    /// Handles the buffer walk for one access: hit/miss accounting, eviction
    /// write-back and fault-in. `for_write` marks the page dirty.
    fn touch(&mut self, id: PageId, for_write: bool) {
        assert!(
            self.live.get(id.index()).copied() == Some(true),
            "access to unknown or freed page {id}"
        );
        let (hit, victim) = self.buffer.access_evicting(id);
        if !self.accounting_paused {
            self.stats.logical_reads += 1;
            if hit {
                self.stats.buffer_hits += 1;
            } else {
                self.stats.physical_reads += 1;
            }
        }
        if self.persistent {
            if let Some(victim) = victim {
                self.evict_payload(victim);
            }
            if self.pages[id.index()].is_none() {
                let payload = self
                    .backend
                    .fetch(id)
                    .unwrap_or_else(|e| panic!("backend fault of page {id} failed: {e}"));
                self.pages[id.index()] = Some(payload);
                self.dirty[id.index()] = false;
            }
            if for_write {
                self.dirty[id.index()] = true;
            }
        }
    }

    /// Writes a page back to the backend (if dirty) and drops its resident
    /// payload. Only meaningful under a persistent backend.
    fn evict_payload(&mut self, id: PageId) {
        let idx = id.index();
        if self.pages[idx].is_none() {
            return;
        }
        if self.dirty[idx] {
            if let Some(payload) = self.pages[idx].as_ref() {
                self.backend
                    .persist(id, payload)
                    .unwrap_or_else(|e| panic!("write-back of page {id} failed: {e}"));
                self.stats.page_writes += 1;
                self.dirty[idx] = false;
            }
        }
        self.pages[idx] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FileBackend, PageCodec};
    use std::path::PathBuf;

    #[test]
    fn allocate_read_roundtrip() {
        let mut store: PagedStore<String> = PagedStore::new(4);
        let a = store.allocate("alpha".into());
        let b = store.allocate("beta".into());
        assert_ne!(a, b);
        assert_eq!(store.read(a), "alpha");
        assert_eq!(store.read(b), "beta");
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().pages_allocated, 2);
        assert_eq!(store.stats().logical_reads, 2);
    }

    #[test]
    fn buffer_absorbs_repeated_reads() {
        let mut store: PagedStore<u32> = PagedStore::new(2);
        let a = store.allocate(1);
        store.read(a);
        store.read(a);
        store.read(a);
        let s = store.stats();
        assert_eq!(s.logical_reads, 3);
        assert_eq!(s.physical_reads, 1);
        assert_eq!(s.buffer_hits, 2);
    }

    #[test]
    fn zero_buffer_counts_every_access() {
        let mut store: PagedStore<u32> = PagedStore::new(0);
        let a = store.allocate(1);
        for _ in 0..5 {
            store.read(a);
        }
        assert_eq!(store.stats().physical_reads, 5);
        assert_eq!(store.stats().buffer_hits, 0);
    }

    #[test]
    fn memory_backend_never_writes_pages() {
        let mut store: PagedStore<u32> = PagedStore::new(1);
        let a = store.allocate(1);
        let b = store.allocate(2);
        store.read(a);
        store.read(b); // evicts a from the (accounting-only) buffer
        *store.read_mut(a) += 1;
        store.flush().unwrap();
        store.sync().unwrap();
        assert_eq!(store.stats().page_writes, 0);
        assert_eq!(store.stats().sync_calls, 0);
        assert!(!store.is_persistent());
    }

    #[test]
    fn free_and_reuse_slots() {
        let mut store: PagedStore<u32> = PagedStore::new(2);
        let a = store.allocate(1);
        let _b = store.allocate(2);
        store.free(a);
        assert_eq!(store.len(), 1);
        assert!(store.peek(a).is_none());
        let c = store.allocate(3);
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(*store.read(c), 3);
        assert_eq!(store.stats().pages_freed, 1);
    }

    #[test]
    fn free_of_resident_page_counts_an_invalidation() {
        let mut store: PagedStore<u32> = PagedStore::new(2);
        let a = store.allocate(1);
        let b = store.allocate(2);
        store.read(a); // a becomes resident
        store.free(a);
        store.free(b); // b was never read, so not resident
        let s = store.stats();
        assert_eq!(s.pages_freed, 2);
        assert_eq!(s.buffer_invalidations, 1);
    }

    #[test]
    #[should_panic(expected = "buffer fraction must lie in [0, 1]")]
    fn negative_buffer_fraction_rejected() {
        let mut store: PagedStore<u32> = PagedStore::new(0);
        store.allocate(1);
        store.set_buffer_fraction(-0.1);
    }

    #[test]
    #[should_panic(expected = "buffer fraction must lie in [0, 1]")]
    fn oversized_buffer_fraction_rejected() {
        let mut store: PagedStore<u32> = PagedStore::new(0);
        store.allocate(1);
        store.set_buffer_fraction(1.5);
    }

    #[test]
    #[should_panic(expected = "double-freed")]
    fn double_free_panics() {
        let mut store: PagedStore<u32> = PagedStore::new(2);
        let a = store.allocate(1);
        store.free(a);
        store.free(a);
    }

    #[test]
    #[should_panic(expected = "access to unknown or freed page")]
    fn read_after_free_panics() {
        let mut store: PagedStore<u32> = PagedStore::new(2);
        let a = store.allocate(1);
        store.free(a);
        store.read(a);
    }

    #[test]
    fn read_mut_and_write_count_writes() {
        let mut store: PagedStore<u32> = PagedStore::new(2);
        let a = store.allocate(1);
        *store.read_mut(a) += 10;
        store.write(a, 99);
        assert_eq!(*store.read(a), 99);
        // allocate(1) + read_mut(1) + write(1)
        assert_eq!(store.stats().physical_writes, 3);
    }

    #[test]
    fn accounting_pause_suppresses_counters_but_warms_buffer() {
        let mut store: PagedStore<u32> = PagedStore::new(4);
        let a = store.allocate(1);
        store.reset_stats();
        store.with_accounting_paused(|s| {
            s.read(a);
            s.read(a);
        });
        assert_eq!(store.stats().logical_reads, 0);
        assert_eq!(store.stats().physical_reads, 0);
        // the page is now resident, so the next real read is a hit
        store.read(a);
        assert_eq!(store.stats().logical_reads, 1);
        assert_eq!(store.stats().buffer_hits, 1);
    }

    #[test]
    fn set_buffer_fraction_scales_with_live_pages() {
        let mut store: PagedStore<u32> = PagedStore::new(0);
        for i in 0..100 {
            store.allocate(i);
        }
        store.set_buffer_fraction(0.02);
        assert_eq!(store.buffer_frames(), 2);
        store.set_buffer_fraction(0.0);
        assert_eq!(store.buffer_frames(), 0);
    }

    #[test]
    fn live_pages_reports_only_live() {
        let mut store: PagedStore<u32> = PagedStore::new(0);
        let a = store.allocate(1);
        let b = store.allocate(2);
        let c = store.allocate(3);
        store.free(b);
        assert_eq!(store.live_pages(), vec![a, c]);
        assert_eq!(store.capacity(), 3);
    }

    #[test]
    fn fork_in_memory_copies_pages_and_stats() {
        let mut store: PagedStore<u32> = PagedStore::new(2);
        let a = store.allocate(1);
        let b = store.allocate(2);
        store.read(a);
        let mut fork = store.fork_in_memory();
        assert_eq!(*fork.read(a), 1);
        assert_eq!(*fork.read(b), 2);
        *fork.read_mut(a) = 77;
        assert_eq!(*store.read(a), 1, "fork is independent");
        assert!(!fork.is_persistent());
    }

    // --- file-backed buffer-manager behaviour ---

    impl PageCodec for u32 {
        fn encode_page(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.to_le_bytes());
        }

        fn decode_page(bytes: &[u8]) -> Result<Self, StorageError> {
            let arr: [u8; 4] = bytes
                .try_into()
                .map_err(|_| StorageError::Corrupt("u32 page needs 4 bytes".into()))?;
            Ok(u32::from_le_bytes(arr))
        }
    }

    fn disk_store(name: &str, frames: usize) -> (PagedStore<u32>, PathBuf) {
        let mut path = std::env::temp_dir();
        path.push(format!("pref_storage_store_{}_{name}", std::process::id()));
        let backend: FileBackend<u32> = FileBackend::create(&path, 64).unwrap();
        (PagedStore::with_backend(Box::new(backend), frames), path)
    }

    #[test]
    fn disk_store_survives_eviction_beyond_buffer() {
        let (mut store, path) = disk_store("beyond", 2);
        let ids: Vec<PageId> = (0..16u32).map(|i| store.allocate(i * 10)).collect();
        // far more pages than the 2-frame buffer: most are on disk now
        assert!(store.stats().page_writes > 0, "evictions must hit the file");
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(*store.read(id), i as u32 * 10);
        }
        assert!(store.is_persistent());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn disk_store_writes_back_dirty_pages_only() {
        let (mut store, path) = disk_store("dirty", 2);
        let a = store.allocate(1);
        let b = store.allocate(2);
        let c = store.allocate(3); // evicts a (dirty: fresh allocation)
        store.flush().unwrap(); // b, c written back; all clean now
        let w = store.stats().page_writes;
        store.read(a); // faults a in, evicting the LRU *clean* page
        store.read(b);
        store.read(c);
        // only clean pages were evicted during those reads
        assert_eq!(store.stats().page_writes, w);
        *store.read_mut(a) = 100;
        store.read(b);
        store.read(c); // a (dirty) must be written back on its eviction
        assert_eq!(store.stats().page_writes, w + 1);
        assert_eq!(*store.read(a), 100);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn disk_store_flush_and_sync_count() {
        let (mut store, path) = disk_store("flush", 4);
        store.allocate(1);
        store.allocate(2);
        store.flush().unwrap();
        let s = store.stats();
        assert_eq!(s.page_writes, 2);
        assert_eq!(s.sync_calls, 1);
        // flushing again writes nothing (all clean)
        store.flush().unwrap();
        assert_eq!(store.stats().page_writes, 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn disk_store_fork_in_memory_materializes_evicted_pages() {
        let (mut store, path) = disk_store("fork", 2);
        let ids: Vec<PageId> = (0..8u32).map(|i| store.allocate(i + 1)).collect();
        let mut fork = store.fork_in_memory();
        assert!(!fork.is_persistent());
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(*fork.read(id), i as u32 + 1);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn disk_store_free_then_reuse_keeps_contents_straight() {
        let (mut store, path) = disk_store("reuse", 2);
        let ids: Vec<PageId> = (0..6u32).map(|i| store.allocate(i)).collect();
        store.free(ids[1]);
        store.free(ids[4]);
        let x = store.allocate(400);
        let y = store.allocate(100);
        assert_eq!(*store.read(x), 400);
        assert_eq!(*store.read(y), 100);
        assert_eq!(*store.read(ids[0]), 0);
        assert_eq!(*store.read(ids[5]), 5);
        assert_eq!(store.len(), 6);
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "at least one buffer frame")]
    fn persistent_store_rejects_zero_buffer() {
        let mut path = std::env::temp_dir();
        path.push(format!("pref_storage_store_zero_{}", std::process::id()));
        let backend: FileBackend<u32> = FileBackend::create(&path, 64).unwrap();
        let _ = PagedStore::<u32>::with_backend(Box::new(backend), 0);
    }

    #[test]
    fn read_unaccounted_faults_without_charging() {
        let (mut store, path) = disk_store("unaccounted", 2);
        let ids: Vec<PageId> = (0..6u32).map(|i| store.allocate(i)).collect();
        store.reset_stats();
        assert_eq!(*store.read_unaccounted(ids[0]), 0);
        assert_eq!(store.stats().logical_reads, 0);
        assert_eq!(store.stats().physical_reads, 0);
        std::fs::remove_file(path).ok();
    }
}
