//! The simulated disk: a paged store with buffer-managed access counting.

use crate::{IoStats, LruBuffer};
use serde::{Deserialize, Serialize};

/// Identifier of a page in a [`PagedStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageId(u64);

impl PageId {
    /// Creates a page id from a raw index.
    pub fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw index.
    pub fn raw(self) -> u64 {
        self.0
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An in-memory stand-in for a disk file of fixed-size pages.
///
/// Every read goes through an [`LruBuffer`]; reads that miss the buffer are
/// counted as physical I/O in [`IoStats`], reproducing the paper's
/// measurement methodology. The payload type `P` is whatever the caller wants
/// to store in a page (the R-tree stores one node per page).
#[derive(Debug, Clone)]
pub struct PagedStore<P> {
    pages: Vec<Option<P>>,
    free_list: Vec<PageId>,
    buffer: LruBuffer,
    stats: IoStats,
    /// When `true`, reads bypass the hit/miss accounting entirely. Used while
    /// bulk-loading a tree, whose construction cost the paper does not charge
    /// to the assignment algorithms.
    accounting_paused: bool,
}

impl<P> PagedStore<P> {
    /// Creates an empty store whose buffer holds `buffer_frames` pages.
    pub fn new(buffer_frames: usize) -> Self {
        Self {
            pages: Vec::new(),
            free_list: Vec::new(),
            buffer: LruBuffer::new(buffer_frames),
            stats: IoStats::new(),
            accounting_paused: false,
        }
    }

    /// Number of live (allocated and not freed) pages.
    pub fn len(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// `true` when the store holds no live pages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of page slots ever allocated (including freed ones);
    /// page ids are never reused for a *different* role while freed slots
    /// remain on the free list.
    pub fn capacity(&self) -> usize {
        self.pages.len()
    }

    /// The I/O statistics accumulated so far.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the I/O statistics (the buffer contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Clears the buffer pool (all pages become non-resident).
    pub fn clear_buffer(&mut self) {
        self.buffer.clear();
    }

    /// Sets the buffer capacity in frames; shrinking evicts LRU pages.
    pub fn set_buffer_frames(&mut self, frames: usize) {
        self.buffer.set_capacity(frames);
    }

    /// Sets the buffer capacity as a fraction of the current number of live
    /// pages (the paper's "buffer size 2% of the tree size"). A fraction of
    /// zero disables the buffer.
    ///
    /// # Panics
    /// Panics on a fraction outside `[0, 1]` (or NaN): a negative fraction
    /// would silently disable the buffer and a fraction above 1 would
    /// silently make it larger than the store, mis-shaping every I/O
    /// measurement downstream.
    pub fn set_buffer_fraction(&mut self, fraction: f64) {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "buffer fraction must lie in [0, 1], got {fraction}"
        );
        let frames = (fraction * self.len() as f64).round() as usize;
        self.buffer.set_capacity(frames);
    }

    /// Current buffer capacity in frames.
    pub fn buffer_frames(&self) -> usize {
        self.buffer.capacity()
    }

    /// Runs `body` with hit/miss accounting suspended (e.g. during bulk load).
    pub fn with_accounting_paused<R>(&mut self, body: impl FnOnce(&mut Self) -> R) -> R {
        let was = self.accounting_paused;
        self.accounting_paused = true;
        let out = body(self);
        self.accounting_paused = was;
        out
    }

    /// Allocates a new page containing `payload` and returns its id.
    pub fn allocate(&mut self, payload: P) -> PageId {
        self.stats.pages_allocated += 1;
        if !self.accounting_paused {
            self.stats.physical_writes += 1;
        }
        if let Some(id) = self.free_list.pop() {
            self.pages[id.index()] = Some(payload);
            id
        } else {
            self.pages.push(Some(payload));
            PageId::new((self.pages.len() - 1) as u64)
        }
    }

    /// Frees a page. Its slot may be reused by later allocations.
    ///
    /// # Panics
    /// Panics if the page is not live.
    pub fn free(&mut self, id: PageId) {
        let slot = self
            .pages
            .get_mut(id.index())
            .unwrap_or_else(|| panic!("free of unknown page {id}"));
        assert!(slot.is_some(), "double free of page {id}");
        *slot = None;
        self.stats.pages_freed += 1;
        if self.buffer.invalidate(id) {
            self.stats.buffer_invalidations += 1;
        }
        self.free_list.push(id);
    }

    /// Reads a page, charging a logical access and (on a buffer miss) a
    /// physical read.
    ///
    /// # Panics
    /// Panics if the page is not live.
    pub fn read(&mut self, id: PageId) -> &P {
        self.charge_read(id);
        self.pages[id.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("read of freed page {id}"))
    }

    /// Reads a page mutably (same accounting as [`PagedStore::read`], plus a
    /// physical write, since the caller is going to modify the page).
    pub fn read_mut(&mut self, id: PageId) -> &mut P {
        self.charge_read(id);
        if !self.accounting_paused {
            self.stats.physical_writes += 1;
        }
        self.pages[id.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("read_mut of freed page {id}"))
    }

    /// Peeks at a page without touching the buffer or the counters. Intended
    /// for validation, debugging and test oracles only.
    pub fn peek(&self, id: PageId) -> Option<&P> {
        self.pages.get(id.index()).and_then(|p| p.as_ref())
    }

    /// Replaces the payload of a live page, charging a physical write.
    pub fn write(&mut self, id: PageId, payload: P) {
        let slot = self
            .pages
            .get_mut(id.index())
            .unwrap_or_else(|| panic!("write of unknown page {id}"));
        assert!(slot.is_some(), "write of freed page {id}");
        *slot = Some(payload);
        if !self.accounting_paused {
            self.stats.physical_writes += 1;
        }
    }

    /// Identifiers of all live pages (ascending). Intended for validation.
    pub fn live_pages(&self) -> Vec<PageId> {
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|_| PageId::new(i as u64)))
            .collect()
    }

    fn charge_read(&mut self, id: PageId) {
        if self.accounting_paused {
            // still keep the buffer warm so post-build behaviour is realistic
            self.buffer.access(id);
            return;
        }
        self.stats.logical_reads += 1;
        if self.buffer.access(id) {
            self.stats.buffer_hits += 1;
        } else {
            self.stats.physical_reads += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_roundtrip() {
        let mut store: PagedStore<String> = PagedStore::new(4);
        let a = store.allocate("alpha".into());
        let b = store.allocate("beta".into());
        assert_ne!(a, b);
        assert_eq!(store.read(a), "alpha");
        assert_eq!(store.read(b), "beta");
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().pages_allocated, 2);
        assert_eq!(store.stats().logical_reads, 2);
    }

    #[test]
    fn buffer_absorbs_repeated_reads() {
        let mut store: PagedStore<u32> = PagedStore::new(2);
        let a = store.allocate(1);
        store.read(a);
        store.read(a);
        store.read(a);
        let s = store.stats();
        assert_eq!(s.logical_reads, 3);
        assert_eq!(s.physical_reads, 1);
        assert_eq!(s.buffer_hits, 2);
    }

    #[test]
    fn zero_buffer_counts_every_access() {
        let mut store: PagedStore<u32> = PagedStore::new(0);
        let a = store.allocate(1);
        for _ in 0..5 {
            store.read(a);
        }
        assert_eq!(store.stats().physical_reads, 5);
        assert_eq!(store.stats().buffer_hits, 0);
    }

    #[test]
    fn free_and_reuse_slots() {
        let mut store: PagedStore<u32> = PagedStore::new(2);
        let a = store.allocate(1);
        let _b = store.allocate(2);
        store.free(a);
        assert_eq!(store.len(), 1);
        assert!(store.peek(a).is_none());
        let c = store.allocate(3);
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(*store.read(c), 3);
        assert_eq!(store.stats().pages_freed, 1);
    }

    #[test]
    fn free_of_resident_page_counts_an_invalidation() {
        let mut store: PagedStore<u32> = PagedStore::new(2);
        let a = store.allocate(1);
        let b = store.allocate(2);
        store.read(a); // a becomes resident
        store.free(a);
        store.free(b); // b was never read, so not resident
        let s = store.stats();
        assert_eq!(s.pages_freed, 2);
        assert_eq!(s.buffer_invalidations, 1);
    }

    #[test]
    #[should_panic(expected = "buffer fraction must lie in [0, 1]")]
    fn negative_buffer_fraction_rejected() {
        let mut store: PagedStore<u32> = PagedStore::new(0);
        store.allocate(1);
        store.set_buffer_fraction(-0.1);
    }

    #[test]
    #[should_panic(expected = "buffer fraction must lie in [0, 1]")]
    fn oversized_buffer_fraction_rejected() {
        let mut store: PagedStore<u32> = PagedStore::new(0);
        store.allocate(1);
        store.set_buffer_fraction(1.5);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut store: PagedStore<u32> = PagedStore::new(2);
        let a = store.allocate(1);
        store.free(a);
        store.free(a);
    }

    #[test]
    #[should_panic(expected = "read of freed page")]
    fn read_after_free_panics() {
        let mut store: PagedStore<u32> = PagedStore::new(2);
        let a = store.allocate(1);
        store.free(a);
        store.read(a);
    }

    #[test]
    fn read_mut_and_write_count_writes() {
        let mut store: PagedStore<u32> = PagedStore::new(2);
        let a = store.allocate(1);
        *store.read_mut(a) += 10;
        store.write(a, 99);
        assert_eq!(*store.read(a), 99);
        // allocate(1) + read_mut(1) + write(1)
        assert_eq!(store.stats().physical_writes, 3);
    }

    #[test]
    fn accounting_pause_suppresses_counters_but_warms_buffer() {
        let mut store: PagedStore<u32> = PagedStore::new(4);
        let a = store.allocate(1);
        store.reset_stats();
        store.with_accounting_paused(|s| {
            s.read(a);
            s.read(a);
        });
        assert_eq!(store.stats().logical_reads, 0);
        assert_eq!(store.stats().physical_reads, 0);
        // the page is now resident, so the next real read is a hit
        store.read(a);
        assert_eq!(store.stats().logical_reads, 1);
        assert_eq!(store.stats().buffer_hits, 1);
    }

    #[test]
    fn set_buffer_fraction_scales_with_live_pages() {
        let mut store: PagedStore<u32> = PagedStore::new(0);
        for i in 0..100 {
            store.allocate(i);
        }
        store.set_buffer_fraction(0.02);
        assert_eq!(store.buffer_frames(), 2);
        store.set_buffer_fraction(0.0);
        assert_eq!(store.buffer_frames(), 0);
    }

    #[test]
    fn live_pages_reports_only_live() {
        let mut store: PagedStore<u32> = PagedStore::new(0);
        let a = store.allocate(1);
        let b = store.allocate(2);
        let c = store.allocate(3);
        store.free(b);
        assert_eq!(store.live_pages(), vec![a, c]);
        assert_eq!(store.capacity(), 3);
    }
}
