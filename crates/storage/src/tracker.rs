//! Peak-memory accounting for in-memory search structures.

use serde::{Deserialize, Serialize};

/// Tracks the current and peak size (in bytes) of the transient search
/// structures an algorithm maintains: priority queues, pruned-entry lists,
/// per-object TA states, and so on.
///
/// The paper reports "the maximum memory consumed by their search structures
/// (i.e., priority queues and pruned lists of skyline objects) during their
/// execution"; algorithms call [`PeakTracker::add`] / [`PeakTracker::remove`]
/// as their structures grow and shrink, or [`PeakTracker::observe`] with an
/// absolute measurement taken at a checkpoint.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeakTracker {
    current: u64,
    peak: u64,
}

impl PeakTracker {
    /// A tracker with nothing allocated.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current tracked size in bytes.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Largest size observed so far, in bytes.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Largest size observed so far, in mebibytes.
    pub fn peak_mib(&self) -> f64 {
        self.peak as f64 / (1024.0 * 1024.0)
    }

    /// Registers `bytes` of additional structure.
    pub fn add(&mut self, bytes: u64) {
        self.current += bytes;
        if self.current > self.peak {
            self.peak = self.current;
        }
    }

    /// Registers release of `bytes` of structure (saturating at zero).
    pub fn remove(&mut self, bytes: u64) {
        self.current = self.current.saturating_sub(bytes);
    }

    /// Replaces the current measurement with an absolute value (e.g. a value
    /// recomputed from container lengths at a checkpoint) and updates the peak.
    pub fn observe(&mut self, bytes: u64) {
        self.current = bytes;
        if bytes > self.peak {
            self.peak = bytes;
        }
    }

    /// Merges another tracker's peak into this one: the combined peak is the
    /// sum of peaks (a conservative upper bound when structures coexist).
    pub fn merge_concurrent(&mut self, other: &PeakTracker) {
        self.current += other.current;
        self.peak += other.peak;
    }

    /// Resets both current and peak to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl std::fmt::Display for PeakTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "peak={:.2} MiB", self.peak_mib())
    }
}

/// Rough per-element byte costs used by the algorithms when reporting their
/// structure sizes. These mirror the sizes of the paper's C++ structures
/// closely enough for relative comparisons.
pub mod cost {
    /// A heap entry holding an id, a score and a tag.
    pub const HEAP_ENTRY: u64 = 24;
    /// A stored multidimensional point/MBR entry of dimensionality `d`.
    pub fn entry(dims: usize) -> u64 {
        (2 * dims * 8 + 8) as u64
    }
    /// A per-function or per-object bookkeeping record (id + score + flags).
    pub const RECORD: u64 = 24;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_tracks_peak() {
        let mut t = PeakTracker::new();
        t.add(100);
        t.add(50);
        assert_eq!(t.current(), 150);
        assert_eq!(t.peak(), 150);
        t.remove(120);
        assert_eq!(t.current(), 30);
        assert_eq!(t.peak(), 150);
        t.add(10);
        assert_eq!(t.peak(), 150);
    }

    #[test]
    fn remove_saturates() {
        let mut t = PeakTracker::new();
        t.add(10);
        t.remove(100);
        assert_eq!(t.current(), 0);
    }

    #[test]
    fn observe_sets_absolute_value() {
        let mut t = PeakTracker::new();
        t.observe(500);
        t.observe(200);
        assert_eq!(t.current(), 200);
        assert_eq!(t.peak(), 500);
    }

    #[test]
    fn merge_concurrent_adds_peaks() {
        let mut a = PeakTracker::new();
        a.add(100);
        let mut b = PeakTracker::new();
        b.add(200);
        b.remove(200);
        a.merge_concurrent(&b);
        assert_eq!(a.peak(), 300);
        assert_eq!(a.current(), 100);
    }

    #[test]
    fn display_and_units() {
        let mut t = PeakTracker::new();
        t.add(2 * 1024 * 1024);
        assert!((t.peak_mib() - 2.0).abs() < 1e-9);
        assert!(t.to_string().contains("2.00 MiB"));
        t.reset();
        assert_eq!(t.peak(), 0);
    }

    #[test]
    fn cost_helpers_are_sane() {
        assert_eq!(cost::entry(4), 72);
        // each extra dimension costs two coordinates (lo/hi) of 8 bytes
        assert_eq!(cost::entry(5) - cost::entry(4), 16);
        assert_eq!(cost::HEAP_ENTRY, cost::RECORD);
    }
}
