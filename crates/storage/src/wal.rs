//! Write-ahead-log and checkpoint file primitives.
//!
//! The service tier gives every shard a directory holding *generations* of
//! durable state:
//!
//! * `checkpoint-<S>.ckpt` — a full snapshot of the shard taken when the next
//!   log record would have had sequence number `S`;
//! * `wal-<S>.log` — the log segment holding records `S, S+1, …` appended
//!   after that checkpoint.
//!
//! A log record is `[len: u32 LE][seq: u64 LE][crc: u64 LE][payload]` where
//! `crc = fnv1a64(seq_le ++ payload)`. The payload is opaque bytes — the
//! service encodes its `UpdateOp` batches one record per batch, making the
//! batch the atomicity unit end to end. Readers accept the longest prefix of
//! whole, checksum-valid, consecutively-numbered records and ignore the rest,
//! so a record torn by a crash (or truncated by fault injection) is never
//! half-applied.
//!
//! Checkpoints are written to a temporary file, fsynced, and renamed into
//! place; a reader validates magic, length and checksum and falls back to the
//! previous generation if the newest checkpoint is unreadable. Rotation order
//! is crash-safe: first the new log segment is created, then the checkpoint
//! is written, then generations older than the *previous* one are removed
//! (the previous generation is kept so a later corruption of the newest
//! checkpoint still leaves a recoverable chain).

use crate::backend::{fnv1a64, StorageError};
use std::fs::{self, File};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every checkpoint file.
const CHECKPOINT_MAGIC: &[u8; 8] = b"FAIRCKP1";

/// Size of a log record header: length (u32) + sequence (u64) + crc (u64).
const RECORD_HEADER: usize = 4 + 8 + 8;

/// Largest record payload accepted on read; guards recovery against a
/// corrupted length field asking for gigabytes.
const MAX_RECORD_LEN: usize = 64 * 1024 * 1024;

fn io_err(op: &str, path: &Path, e: &std::io::Error) -> StorageError {
    StorageError::Io(format!("{op} {}: {e}", path.display()))
}

/// Returns the path of the log segment starting at sequence `seq`.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:020}.log"))
}

/// Returns the path of the checkpoint taken at sequence `seq`.
pub fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{seq:020}.ckpt"))
}

/// Creates `dir` (and parents) if missing.
pub fn ensure_dir(dir: &Path) -> Result<(), StorageError> {
    fs::create_dir_all(dir).map_err(|e| io_err("create directory", dir, &e))
}

/// Lists `(start_seq, path)` of files in `dir` matching `prefix<seq>suffix`,
/// ascending by sequence number.
fn list_numbered(
    dir: &Path,
    prefix: &str,
    suffix: &str,
) -> Result<Vec<(u64, PathBuf)>, StorageError> {
    let mut out = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err("list directory", dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("list directory", dir, &e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(prefix) else {
            continue;
        };
        let Some(digits) = rest.strip_suffix(suffix) else {
            continue;
        };
        let Ok(seq) = digits.parse::<u64>() else {
            continue;
        };
        out.push((seq, entry.path()));
    }
    out.sort_by_key(|&(seq, _)| seq);
    Ok(out)
}

/// Log segments in `dir`, ascending by start sequence.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StorageError> {
    list_numbered(dir, "wal-", ".log")
}

/// Checkpoints in `dir`, ascending by sequence.
pub fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StorageError> {
    list_numbered(dir, "checkpoint-", ".ckpt")
}

/// Numbered subdirectories `<prefix><n>` of `root`, ascending by `n`. Used by
/// the service to rediscover its shard directories on recovery.
pub fn list_numbered_dirs(root: &Path, prefix: &str) -> Result<Vec<(u64, PathBuf)>, StorageError> {
    let mut out = Vec::new();
    let entries = fs::read_dir(root).map_err(|e| io_err("list directory", root, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("list directory", root, &e))?;
        if !entry.path().is_dir() {
            continue;
        }
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(digits) = name.strip_prefix(prefix) else {
            continue;
        };
        let Ok(n) = digits.parse::<u64>() else {
            continue;
        };
        out.push((n, entry.path()));
    }
    out.sort_by_key(|&(n, _)| n);
    Ok(out)
}

/// An append-only writer for one log segment.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    next_seq: u64,
    scratch: Vec<u8>,
}

impl WalWriter {
    /// Creates (truncating) the segment for records starting at `start_seq`.
    pub fn create(dir: &Path, start_seq: u64) -> Result<Self, StorageError> {
        let path = segment_path(dir, start_seq);
        let file = File::options()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("create log segment", &path, &e))?;
        Ok(Self {
            file,
            path,
            next_seq: start_seq,
            scratch: Vec::new(),
        })
    }

    /// Opens an existing segment for appending after `records` whole records
    /// were recovered from it (the file is truncated to `valid_len` first, so
    /// a torn tail can never precede fresh appends).
    pub fn open_after_recovery(
        dir: &Path,
        start_seq: u64,
        tail: &SegmentTail,
    ) -> Result<Self, StorageError> {
        let path = segment_path(dir, start_seq);
        let file = File::options()
            .write(true)
            .open(&path)
            .map_err(|e| io_err("open log segment", &path, &e))?;
        file.set_len(tail.valid_len)
            .map_err(|e| io_err("truncate torn tail of", &path, &e))?;
        let mut writer = Self {
            file,
            path,
            next_seq: start_seq + tail.records.len() as u64,
            scratch: Vec::new(),
        };
        writer
            .file
            .seek(SeekFrom::Start(tail.valid_len))
            .map_err(|e| io_err("seek log segment", &writer.path, &e))?;
        // make the truncation itself durable before anything is appended
        writer.sync()?;
        Ok(writer)
    }

    /// Sequence number the next appended record will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The segment file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and returns its sequence number. The record is in
    /// the OS page cache after this call; it is durable only after
    /// [`WalWriter::sync`].
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StorageError> {
        let seq = self.next_seq;
        let seq_bytes = seq.to_le_bytes();
        let mut crc_input = Vec::with_capacity(8 + payload.len());
        crc_input.extend_from_slice(&seq_bytes);
        crc_input.extend_from_slice(payload);
        let crc = fnv1a64(&crc_input);
        self.scratch.clear();
        self.scratch
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.scratch.extend_from_slice(&seq_bytes);
        self.scratch.extend_from_slice(&crc.to_le_bytes());
        self.scratch.extend_from_slice(payload);
        self.file
            .write_all(&self.scratch)
            .map_err(|e| io_err("append to log segment", &self.path, &e))?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Makes all appended records durable (fsync).
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.file
            .sync_data()
            .map_err(|e| io_err("sync log segment", &self.path, &e))
    }
}

/// The readable contents of one log segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentTail {
    /// Whole, checksum-valid, consecutively numbered records: `(seq, payload)`.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Byte length of the valid prefix (everything after it is torn/garbage).
    pub valid_len: u64,
    /// `true` when bytes beyond `valid_len` existed (a torn tail was cut).
    pub torn_tail: bool,
}

/// Reads a log segment, accepting the longest valid prefix of records. The
/// first record must carry `start_seq` and numbering must be consecutive;
/// anything after the first violation (short read, bad checksum, wrong
/// sequence) is reported as a torn tail, never surfaced as data.
pub fn read_segment(dir: &Path, start_seq: u64) -> Result<SegmentTail, StorageError> {
    let path = segment_path(dir, start_seq);
    let mut file = File::open(&path).map_err(|e| io_err("open log segment", &path, &e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| io_err("read log segment", &path, &e))?;
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut expect_seq = start_seq;
    while let Some(header) = bytes.get(offset..offset + RECORD_HEADER) {
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        if len > MAX_RECORD_LEN {
            break;
        }
        let seq = u64::from_le_bytes([
            header[4], header[5], header[6], header[7], header[8], header[9], header[10],
            header[11],
        ]);
        let want_crc = u64::from_le_bytes([
            header[12], header[13], header[14], header[15], header[16], header[17], header[18],
            header[19],
        ]);
        if seq != expect_seq {
            break;
        }
        let body_start = offset + RECORD_HEADER;
        let Some(payload) = bytes.get(body_start..body_start + len) else {
            break;
        };
        let mut crc_input = Vec::with_capacity(8 + len);
        crc_input.extend_from_slice(&seq.to_le_bytes());
        crc_input.extend_from_slice(payload);
        if fnv1a64(&crc_input) != want_crc {
            break;
        }
        records.push((seq, payload.to_vec()));
        offset = body_start + len;
        expect_seq += 1;
    }
    Ok(SegmentTail {
        records,
        valid_len: offset as u64,
        torn_tail: offset < bytes.len(),
    })
}

/// Atomically writes a checkpoint taken at sequence `seq`: the payload goes
/// to a temporary file which is fsynced and renamed into place, then the
/// directory entry is fsynced. A crash at any point leaves either the old
/// state or the complete new checkpoint, never a half-written one with the
/// final name.
pub fn write_checkpoint(dir: &Path, seq: u64, payload: &[u8]) -> Result<(), StorageError> {
    let final_path = checkpoint_path(dir, seq);
    let tmp_path = dir.join(format!("checkpoint-{seq:020}.tmp"));
    let mut bytes = Vec::with_capacity(CHECKPOINT_MAGIC.len() + 12 + payload.len());
    bytes.extend_from_slice(CHECKPOINT_MAGIC);
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    {
        let mut tmp = File::create(&tmp_path).map_err(|e| io_err("create", &tmp_path, &e))?;
        tmp.write_all(&bytes)
            .map_err(|e| io_err("write", &tmp_path, &e))?;
        tmp.sync_data().map_err(|e| io_err("sync", &tmp_path, &e))?;
    }
    fs::rename(&tmp_path, &final_path)
        .map_err(|e| io_err("rename checkpoint into", &final_path, &e))?;
    // make the rename itself durable
    let dir_handle = File::open(dir).map_err(|e| io_err("open", dir, &e))?;
    dir_handle
        .sync_all()
        .map_err(|e| io_err("sync directory", dir, &e))?;
    Ok(())
}

/// Reads and validates the checkpoint taken at sequence `seq`. Returns
/// `Err(StorageError::Corrupt)` when the file exists but fails validation.
pub fn read_checkpoint(dir: &Path, seq: u64) -> Result<Vec<u8>, StorageError> {
    let path = checkpoint_path(dir, seq);
    let mut bytes = Vec::new();
    File::open(&path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err("read checkpoint", &path, &e))?;
    let header_len = CHECKPOINT_MAGIC.len() + 12;
    if bytes.len() < header_len || &bytes[..8] != CHECKPOINT_MAGIC {
        return Err(StorageError::Corrupt(format!(
            "checkpoint {} has a bad header",
            path.display()
        )));
    }
    let len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let want_crc = u64::from_le_bytes([
        bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19],
    ]);
    let payload = &bytes[header_len..];
    if payload.len() != len || fnv1a64(payload) != want_crc {
        return Err(StorageError::Corrupt(format!(
            "checkpoint {} failed length/checksum validation",
            path.display()
        )));
    }
    Ok(payload.to_vec())
}

/// Removes checkpoints and log segments strictly older than `keep_from_seq`.
/// Callers pass the *previous* checkpoint's sequence, keeping one fallback
/// generation behind the newest. Removal failures are ignored: garbage
/// collection must never take down a healthy writer, and a leftover file is
/// re-collected on the next rotation.
pub fn remove_generations_before(dir: &Path, keep_from_seq: u64) {
    let doomed = |items: Result<Vec<(u64, PathBuf)>, StorageError>| {
        items
            .unwrap_or_default()
            .into_iter()
            .filter(|&(seq, _)| seq < keep_from_seq)
    };
    for (_, path) in doomed(list_checkpoints(dir)).chain(doomed(list_segments(dir))) {
        let _ = fs::remove_file(path);
    }
}

/// Removes checkpoints newer than `checkpoint_seq` and segments newer than
/// `active_start_seq` — files a completed recovery deliberately bypassed
/// (corrupt newer checkpoints, segments stranded beyond a torn tail or a
/// sequence gap). A recovery that truncates the tail and resumes appending
/// re-declares the durable truth; bypassed newer files would otherwise make
/// a *later* replay stop at a stale segment boundary. Removal failures are
/// ignored for the same reason as in [`remove_generations_before`].
pub fn remove_unreachable_generations(dir: &Path, checkpoint_seq: u64, active_start_seq: u64) {
    for (seq, path) in list_checkpoints(dir).unwrap_or_default() {
        if seq > checkpoint_seq {
            let _ = fs::remove_file(path);
        }
    }
    for (seq, path) in list_segments(dir).unwrap_or_default() {
        if seq > active_start_seq {
            let _ = fs::remove_file(path);
        }
    }
}

/// A shard's recovered durable state: the newest readable checkpoint plus
/// every whole log record appended after it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredState {
    /// Sequence number of the checkpoint the recovery started from.
    pub checkpoint_seq: u64,
    /// The checkpoint payload (opaque to this crate).
    pub checkpoint: Vec<u8>,
    /// Whole records after the checkpoint, ascending: `(seq, payload)`.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Sequence number the next appended record must get.
    pub next_seq: u64,
    /// The segment tail of the *active* (last) segment, for reopening.
    pub active_tail: SegmentTail,
    /// Start sequence of the active segment.
    pub active_start_seq: u64,
}

/// Recovers a shard directory: picks the newest checkpoint that validates,
/// then replays every whole record from the log segments at or after it.
/// Falls back to older checkpoints when the newest is corrupt (the GC policy
/// keeps one previous generation for exactly this case).
pub fn recover_dir(dir: &Path) -> Result<RecoveredState, StorageError> {
    let checkpoints = list_checkpoints(dir)?;
    if checkpoints.is_empty() {
        return Err(StorageError::Corrupt(format!(
            "no checkpoint found in {}",
            dir.display()
        )));
    }
    let segments = list_segments(dir)?;
    let mut last_err: Option<StorageError> = None;
    for &(ckpt_seq, _) in checkpoints.iter().rev() {
        let checkpoint = match read_checkpoint(dir, ckpt_seq) {
            Ok(payload) => payload,
            Err(e) => {
                last_err = Some(e);
                continue;
            }
        };
        // replay segments starting at or after the checkpoint, in order,
        // requiring seamless sequence numbering across segment boundaries
        let mut records: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut next_seq = ckpt_seq;
        let mut active_tail = SegmentTail {
            records: Vec::new(),
            valid_len: 0,
            torn_tail: false,
        };
        let mut active_start_seq = ckpt_seq;
        let mut have_active = false;
        for &(start_seq, _) in segments.iter() {
            if start_seq < ckpt_seq {
                continue;
            }
            if start_seq != next_seq {
                // a gap means the later segments belong to a future this
                // recovery never reached; stop at the gap
                break;
            }
            let tail = read_segment(dir, start_seq)?;
            next_seq = start_seq + tail.records.len() as u64;
            records.extend(tail.records.iter().cloned());
            active_tail = tail.clone();
            active_start_seq = start_seq;
            have_active = true;
            if tail.torn_tail {
                // nothing after a torn tail can be consecutive
                break;
            }
        }
        if !have_active {
            // checkpoint without its segment: only acceptable when rotation
            // crashed between checkpoint write and segment creation — fall
            // back to an older generation that still has its log
            last_err = Some(StorageError::Corrupt(format!(
                "checkpoint {ckpt_seq} in {} has no log segment",
                dir.display()
            )));
            continue;
        }
        return Ok(RecoveredState {
            checkpoint_seq: ckpt_seq,
            checkpoint,
            records,
            next_seq,
            active_tail,
            active_start_seq,
        });
    }
    Err(last_err.unwrap_or_else(|| {
        StorageError::Corrupt(format!("no recoverable generation in {}", dir.display()))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pref_storage_wal_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        ensure_dir(&p).unwrap();
        p
    }

    #[test]
    fn wal_roundtrip_and_sequencing() {
        let dir = temp_dir("roundtrip");
        let mut w = WalWriter::create(&dir, 5).unwrap();
        assert_eq!(w.append(b"one").unwrap(), 5);
        assert_eq!(w.append(b"two").unwrap(), 6);
        assert_eq!(w.append(b"").unwrap(), 7);
        w.sync().unwrap();
        let tail = read_segment(&dir, 5).unwrap();
        assert!(!tail.torn_tail);
        assert_eq!(
            tail.records,
            vec![(5, b"one".to_vec()), (6, b"two".to_vec()), (7, Vec::new())]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_at_every_offset_yields_a_record_prefix() {
        let dir = temp_dir("truncate");
        let mut w = WalWriter::create(&dir, 0).unwrap();
        let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; (i as usize + 1) * 3]).collect();
        let mut boundaries = vec![0u64];
        for p in &payloads {
            w.append(p).unwrap();
            boundaries.push((RECORD_HEADER + p.len()) as u64 + boundaries.last().unwrap());
        }
        w.sync().unwrap();
        let full = fs::read(segment_path(&dir, 0)).unwrap();
        for cut in 0..=full.len() {
            fs::write(segment_path(&dir, 0), &full[..cut]).unwrap();
            let tail = read_segment(&dir, 0).unwrap();
            // the number of whole records is the number of boundaries <= cut
            let want = boundaries[1..].iter().filter(|&&b| b <= cut as u64).count();
            assert_eq!(tail.records.len(), want, "cut at {cut}");
            assert_eq!(tail.valid_len, boundaries[want], "cut at {cut}");
            assert_eq!(tail.torn_tail, (cut as u64) > boundaries[want]);
            for (i, (seq, payload)) in tail.records.iter().enumerate() {
                assert_eq!(*seq, i as u64);
                assert_eq!(payload, &payloads[i]);
            }
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_record_stops_the_replay() {
        let dir = temp_dir("corrupt");
        let mut w = WalWriter::create(&dir, 0).unwrap();
        for i in 0..4u8 {
            w.append(&[i; 10]).unwrap();
        }
        w.sync().unwrap();
        let path = segment_path(&dir, 0);
        let full = fs::read(&path).unwrap();
        // flip one byte inside record 2's payload
        let record_size = RECORD_HEADER + 10;
        let mut bad = full.clone();
        bad[2 * record_size + RECORD_HEADER + 3] ^= 0xFF;
        fs::write(&path, &bad).unwrap();
        let tail = read_segment(&dir, 0).unwrap();
        assert_eq!(
            tail.records.len(),
            2,
            "records after the corruption are dropped"
        );
        assert!(tail.torn_tail);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_after_recovery_truncates_the_torn_tail() {
        let dir = temp_dir("reopen");
        let mut w = WalWriter::create(&dir, 0).unwrap();
        w.append(b"aaaa").unwrap();
        w.append(b"bbbb").unwrap();
        w.sync().unwrap();
        // simulate a torn append: half a record of garbage at the end
        let path = segment_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0x11; 7]);
        fs::write(&path, &bytes).unwrap();
        let tail = read_segment(&dir, 0).unwrap();
        assert!(tail.torn_tail);
        let mut w = WalWriter::open_after_recovery(&dir, 0, &tail).unwrap();
        assert_eq!(w.next_seq(), 2);
        w.append(b"cccc").unwrap();
        w.sync().unwrap();
        let tail = read_segment(&dir, 0).unwrap();
        assert!(!tail.torn_tail);
        assert_eq!(
            tail.records,
            vec![
                (0, b"aaaa".to_vec()),
                (1, b"bbbb".to_vec()),
                (2, b"cccc".to_vec())
            ]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_roundtrip_and_validation() {
        let dir = temp_dir("ckpt");
        write_checkpoint(&dir, 42, b"snapshot-bytes").unwrap();
        assert_eq!(read_checkpoint(&dir, 42).unwrap(), b"snapshot-bytes");
        // corrupt it: validation must fail, not return garbage
        let path = checkpoint_path(&dir, 42);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_checkpoint(&dir, 42),
            Err(StorageError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_dir_prefers_newest_checkpoint_and_replays_segments() {
        let dir = temp_dir("recover");
        // generation 0: checkpoint at 0, records 0..3
        write_checkpoint(&dir, 0, b"gen0").unwrap();
        let mut w = WalWriter::create(&dir, 0).unwrap();
        for i in 0..3u8 {
            w.append(&[i]).unwrap();
        }
        w.sync().unwrap();
        // rotation: segment first, then checkpoint at 3, records 3..5
        let mut w = WalWriter::create(&dir, 3).unwrap();
        write_checkpoint(&dir, 3, b"gen1").unwrap();
        for i in 3..5u8 {
            w.append(&[i]).unwrap();
        }
        w.sync().unwrap();
        let rec = recover_dir(&dir).unwrap();
        assert_eq!(rec.checkpoint_seq, 3);
        assert_eq!(rec.checkpoint, b"gen1");
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.next_seq, 5);
        assert_eq!(rec.active_start_seq, 3);
        // corrupt the newest checkpoint: recovery falls back to gen 0 and
        // replays *both* segments
        let path = checkpoint_path(&dir, 3);
        let mut bytes = fs::read(&path).unwrap();
        bytes[10] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let rec = recover_dir(&dir).unwrap();
        assert_eq!(rec.checkpoint_seq, 0);
        assert_eq!(rec.checkpoint, b"gen0");
        assert_eq!(rec.records.len(), 5);
        assert_eq!(rec.next_seq, 5);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_keeps_the_previous_generation() {
        let dir = temp_dir("gc");
        write_checkpoint(&dir, 0, b"g0").unwrap();
        let _ = WalWriter::create(&dir, 0).unwrap();
        write_checkpoint(&dir, 4, b"g1").unwrap();
        let _ = WalWriter::create(&dir, 4).unwrap();
        write_checkpoint(&dir, 9, b"g2").unwrap();
        let _ = WalWriter::create(&dir, 9).unwrap();
        // keep from the previous checkpoint (4): generation 0 goes away
        remove_generations_before(&dir, 4);
        let ckpts: Vec<u64> = list_checkpoints(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        let segs: Vec<u64> = list_segments(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(ckpts, vec![4, 9]);
        assert_eq!(segs, vec![4, 9]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_dir_without_checkpoint_is_an_error() {
        let dir = temp_dir("empty");
        assert!(recover_dir(&dir).is_err());
        fs::remove_dir_all(&dir).ok();
    }
}
