//! Synthetic stand-ins for the paper's real datasets (Zillow and NBA).
//!
//! The originals are not redistributable; these generators reproduce the
//! statistical properties the experiments depend on — dimensionality, heavy
//! skew, and (for Zillow) positive correlation between attributes — so the
//! relative behaviour of the algorithms in Figure 16 is preserved. See
//! `DESIGN.md` for the substitution note.

use crate::rng_ext::standard_normal;
use pref_geom::Point;
use pref_rtree::RecordId;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Number of attributes in the Zillow dataset (bathrooms, bedrooms, living
/// area, price, lot area).
pub const ZILLOW_DIMS: usize = 5;

/// Number of attributes selected from NBA (points, rebounds, assists, steals,
/// blocks).
pub const NBA_DIMS: usize = 5;

/// Size of the real NBA dataset used in the paper (players since 1973).
pub const NBA_SIZE: usize = 12_278;

fn clamp01(v: f64) -> f64 {
    v.clamp(0.0, 1.0)
}

/// Generates a Zillow-like real-estate dataset: five positively correlated,
/// heavily right-skewed attributes normalized to `[0, 1]` (a big expensive
/// house is big in every attribute; most listings are small).
pub fn zillow_like_objects(n: usize, seed: u64) -> Vec<(RecordId, Point)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            // latent "size/quality" factor, log-normally distributed
            let latent = (0.8 * standard_normal(&mut rng)).exp();
            let mut coords = Vec::with_capacity(ZILLOW_DIMS);
            for d in 0..ZILLOW_DIMS {
                // each attribute follows the latent factor with its own noise
                // and skew; normalize with a saturating transform
                let noise = (0.35 * standard_normal(&mut rng)).exp();
                let raw = latent * noise * (1.0 + 0.15 * d as f64);
                coords.push(clamp01(raw / (raw + 2.0)));
            }
            (RecordId(i as u64), Point::from_slice(&coords))
        })
        .collect()
}

/// Generates an NBA-like per-player-season statistics dataset: five skewed,
/// moderately correlated attributes normalized to `[0, 1]` (star players score
/// high across the board; the bulk of the league sits near the bottom).
pub fn nba_like_objects(n: usize, seed: u64) -> Vec<(RecordId, Point)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            // latent "player strength" in [0, 1], skewed towards low values
            let strength = rng.gen_range(0.0f64..1.0).powf(2.2);
            // per-category specialisation: a strong rebounder is not
            // necessarily a strong scorer
            let coords: Vec<f64> = (0..NBA_DIMS)
                .map(|_| {
                    let specialisation = rng.gen_range(0.3..1.0);
                    let noise = 0.06 * standard_normal(&mut rng);
                    clamp01(strength * specialisation + noise)
                })
                .collect();
            (RecordId(i as u64), Point::from_slice(&coords))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(values: &[f64]) -> f64 {
        values.iter().sum::<f64>() / values.len() as f64
    }

    fn skewness(values: &[f64]) -> f64 {
        let m = mean(values);
        let n = values.len() as f64;
        let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / n;
        let third = values.iter().map(|v| (v - m).powi(3)).sum::<f64>() / n;
        third / var.powf(1.5)
    }

    fn pearson(points: &[(RecordId, Point)], a: usize, b: usize) -> f64 {
        let xs: Vec<f64> = points.iter().map(|(_, p)| p.coord(a)).collect();
        let ys: Vec<f64> = points.iter().map(|(_, p)| p.coord(b)).collect();
        let n = xs.len() as f64;
        let mx = mean(&xs);
        let my = mean(&ys);
        let cov = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>()
            / n;
        let sx = (xs.iter().map(|x| (x - mx).powi(2)).sum::<f64>() / n).sqrt();
        let sy = (ys.iter().map(|y| (y - my).powi(2)).sum::<f64>() / n).sqrt();
        cov / (sx * sy)
    }

    #[test]
    fn zillow_like_shape() {
        let objs = zillow_like_objects(8000, 3);
        assert_eq!(objs.len(), 8000);
        assert_eq!(objs[0].1.dims(), ZILLOW_DIMS);
        // positively correlated attributes
        assert!(pearson(&objs, 0, 3) > 0.4);
        // right-skewed values
        let col: Vec<f64> = objs.iter().map(|(_, p)| p.coord(0)).collect();
        assert!(
            skewness(&col) > 0.4,
            "zillow attributes must be right-skewed"
        );
    }

    #[test]
    fn nba_like_shape() {
        let objs = nba_like_objects(NBA_SIZE, 4);
        assert_eq!(objs.len(), NBA_SIZE);
        assert_eq!(objs[0].1.dims(), NBA_DIMS);
        let col: Vec<f64> = objs.iter().map(|(_, p)| p.coord(1)).collect();
        assert!(skewness(&col) > 0.5, "nba attributes must be right-skewed");
        // most of the mass sits near the bottom of the range
        assert!(mean(&col) < 0.45);
        // attributes of the same player are positively related
        assert!(pearson(&objs, 0, 1) > 0.2);
    }

    #[test]
    fn determinism_and_range() {
        let a = zillow_like_objects(100, 9);
        let b = zillow_like_objects(100, 9);
        assert_eq!(a, b);
        for (_, p) in zillow_like_objects(500, 10)
            .iter()
            .chain(nba_like_objects(500, 10).iter())
        {
            assert!(p.coords().iter().all(|c| (0.0..=1.0).contains(c)));
        }
    }
}
