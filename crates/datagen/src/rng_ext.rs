//! Small sampling helpers on top of `rand`.

use rand::Rng;

/// Draws a standard-normal variate using the Box–Muller transform.
///
/// Implemented locally to avoid pulling in `rand_distr` for a single
/// distribution (see DESIGN.md §3).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn moments_are_approximately_standard() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn samples_are_finite() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..10_000).all(|_| standard_normal(&mut rng).is_finite()));
    }
}
