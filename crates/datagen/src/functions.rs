//! Preference-function workload generators.

use crate::rng_ext::standard_normal;
use pref_geom::LinearFunction;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Generates `n` preference functions whose weights are drawn independently
/// and uniformly, then normalized to sum to one (the paper's default function
/// workload: "linear with weights generated independently").
pub fn uniform_weight_functions(n: usize, dims: usize, seed: u64) -> Vec<LinearFunction> {
    assert!(dims > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // rejection-free: at least one weight is kept strictly positive
            let mut w: Vec<f64> = (0..dims).map(|_| rng.gen_range(0.0..1.0)).collect();
            if w.iter().sum::<f64>() <= f64::EPSILON {
                w[0] = 1.0;
            }
            LinearFunction::new(w).expect("uniform weights are valid")
        })
        .collect()
}

/// Generates clustered preference weights as in Figure 12: `clusters` random
/// centers are drawn uniformly; each function picks one of the centers and its
/// weights are sampled from a Gaussian with standard deviation `sigma`
/// (0.05 in the paper) around that center, clamped to be non-negative and then
/// normalized.
pub fn clustered_weight_functions(
    n: usize,
    dims: usize,
    clusters: usize,
    sigma: f64,
    seed: u64,
) -> Vec<LinearFunction> {
    assert!(dims > 0);
    assert!(clusters > 0, "at least one cluster center is required");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..clusters)
        .map(|_| {
            let raw: Vec<f64> = (0..dims).map(|_| rng.gen_range(0.05..1.0)).collect();
            let sum: f64 = raw.iter().sum();
            raw.into_iter().map(|v| v / sum).collect()
        })
        .collect();
    (0..n)
        .map(|_| {
            let center = &centers[rng.gen_range(0..clusters)];
            let mut w: Vec<f64> = center
                .iter()
                .map(|&c| (c + sigma * standard_normal(&mut rng)).max(0.0))
                .collect();
            if w.iter().sum::<f64>() <= f64::EPSILON {
                w.clone_from(center);
            }
            LinearFunction::new(w).expect("clustered weights are valid")
        })
        .collect()
}

/// Assigns integer priorities drawn uniformly from `1..=max_priority` to each
/// function (Section 7.4: "priorities randomly chosen from the range [1..γ]").
pub fn random_priorities(
    functions: &[LinearFunction],
    max_priority: u32,
    seed: u64,
) -> Vec<LinearFunction> {
    assert!(max_priority >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    functions
        .iter()
        .map(|f| {
            let gamma = rng.gen_range(1..=max_priority) as f64;
            f.prioritized(gamma).expect("integer priorities are valid")
        })
        .collect()
}

/// Draws a capacity for each of `n` entities, uniformly from `1..=max_capacity`
/// (used for both capacitated functions and capacitated objects).
pub fn random_capacities(n: usize, max_capacity: u32, seed: u64) -> Vec<u32> {
    assert!(max_capacity >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(1..=max_capacity)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_functions_are_normalized() {
        let fs = uniform_weight_functions(200, 4, 1);
        assert_eq!(fs.len(), 200);
        for f in &fs {
            assert_eq!(f.dims(), 4);
            assert!((f.weights().iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert_eq!(f.priority(), 1.0);
        }
    }

    #[test]
    fn clustered_functions_concentrate_around_centers() {
        // With a single cluster the weight variance must be far below the
        // uniform case.
        let clustered = clustered_weight_functions(2000, 3, 1, 0.05, 7);
        let uniform = uniform_weight_functions(2000, 3, 7);
        let variance = |fs: &[LinearFunction]| {
            let mean: f64 = fs.iter().map(|f| f.weight(0)).sum::<f64>() / fs.len() as f64;
            fs.iter().map(|f| (f.weight(0) - mean).powi(2)).sum::<f64>() / fs.len() as f64
        };
        assert!(variance(&clustered) < variance(&uniform) / 2.0);
        for f in &clustered {
            assert!((f.weights().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn more_clusters_spread_the_weights_out() {
        let one = clustered_weight_functions(3000, 4, 1, 0.05, 9);
        let nine = clustered_weight_functions(3000, 4, 9, 0.05, 9);
        let spread = |fs: &[LinearFunction]| {
            let mean: f64 = fs.iter().map(|f| f.weight(0)).sum::<f64>() / fs.len() as f64;
            fs.iter().map(|f| (f.weight(0) - mean).powi(2)).sum::<f64>() / fs.len() as f64
        };
        assert!(spread(&nine) > spread(&one));
    }

    #[test]
    fn priorities_lie_in_range_and_cover_it() {
        let fs = uniform_weight_functions(1000, 3, 3);
        let prioritized = random_priorities(&fs, 8, 4);
        let mut seen = std::collections::HashSet::new();
        for f in &prioritized {
            let g = f.priority();
            assert!((1.0..=8.0).contains(&g));
            assert_eq!(g.fract(), 0.0);
            seen.insert(g as u32);
        }
        assert!(seen.len() >= 6, "most priority levels should occur");
        // base weights unchanged
        assert_eq!(prioritized[0].weights(), fs[0].weights());
    }

    #[test]
    fn capacities_lie_in_range() {
        let caps = random_capacities(500, 16, 5);
        assert_eq!(caps.len(), 500);
        assert!(caps.iter().all(|&c| (1..=16).contains(&c)));
        let ones = random_capacities(10, 1, 6);
        assert!(ones.iter().all(|&c| c == 1));
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_rejected() {
        let _ = clustered_weight_functions(10, 3, 0, 0.05, 1);
    }
}
