//! Synthetic workload generators for the fair-assignment experiments.
//!
//! The paper evaluates on three synthetic object distributions generated with
//! the methodology of Börzsönyi et al. (*The Skyline Operator*, ICDE 2001) —
//! **independent**, **correlated** and **anti-correlated** — plus two real
//! datasets (Zillow and NBA) that are not redistributable; this crate provides
//! skew-faithful synthetic stand-ins for them (see `DESIGN.md` for the
//! substitution rationale). It also generates the preference-function
//! workloads: independently drawn normalized weights, clustered weights
//! (Gaussian around `C` random centers, σ = 0.05, as in Figure 12), priorities
//! and capacities.
//!
//! For the long-lived assignment engine the crate additionally generates
//! deterministic **update streams** ([`update_stream`]): seeded sequences of
//! object / function arrivals and departures with population floors.
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod functions;
mod objects;
mod real_like;
mod rng_ext;
mod stream;

pub use functions::{
    clustered_weight_functions, random_capacities, random_priorities, uniform_weight_functions,
};
pub use objects::{anti_correlated_objects, correlated_objects, independent_objects};
pub use real_like::{nba_like_objects, zillow_like_objects, NBA_DIMS, NBA_SIZE, ZILLOW_DIMS};
pub use rng_ext::standard_normal;
pub use stream::{update_stream, UpdateEvent, UpdateStreamConfig};

use pref_geom::Point;
use pref_rtree::RecordId;

/// The object distributions used throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectDistribution {
    /// Attribute values drawn uniformly and independently.
    Independent,
    /// Values close to each other across dimensions (good objects are good
    /// everywhere).
    Correlated,
    /// Values that trade off against each other (good in one dimension, poor
    /// in the others); the hardest case, with the largest skylines.
    AntiCorrelated,
    /// Synthetic stand-in for the Zillow real-estate dataset (5 attributes,
    /// heavy skew, positive correlation).
    ZillowLike,
    /// Synthetic stand-in for the NBA player-season dataset (5 attributes,
    /// heavy skew).
    NbaLike,
}

impl ObjectDistribution {
    /// Generates `n` objects of dimensionality `dims` (ignored by the
    /// real-data stand-ins, which are inherently 5-dimensional).
    pub fn generate(self, n: usize, dims: usize, seed: u64) -> Vec<(RecordId, Point)> {
        match self {
            ObjectDistribution::Independent => independent_objects(n, dims, seed),
            ObjectDistribution::Correlated => correlated_objects(n, dims, seed),
            ObjectDistribution::AntiCorrelated => anti_correlated_objects(n, dims, seed),
            ObjectDistribution::ZillowLike => zillow_like_objects(n, seed),
            ObjectDistribution::NbaLike => nba_like_objects(n, seed),
        }
    }

    /// Short label used by the experiment harness output.
    pub fn label(self) -> &'static str {
        match self {
            ObjectDistribution::Independent => "independent",
            ObjectDistribution::Correlated => "correlated",
            ObjectDistribution::AntiCorrelated => "anti-correlated",
            ObjectDistribution::ZillowLike => "zillow-like",
            ObjectDistribution::NbaLike => "nba-like",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_dispatches_and_labels() {
        for dist in [
            ObjectDistribution::Independent,
            ObjectDistribution::Correlated,
            ObjectDistribution::AntiCorrelated,
            ObjectDistribution::ZillowLike,
            ObjectDistribution::NbaLike,
        ] {
            let objs = dist.generate(100, 3, 7);
            assert_eq!(objs.len(), 100);
            assert!(!dist.label().is_empty());
            // all coordinates normalized to [0, 1]
            for (_, p) in &objs {
                for &c in p.coords() {
                    assert!(
                        (0.0..=1.0).contains(&c),
                        "{} out of range for {:?}",
                        c,
                        dist
                    );
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = ObjectDistribution::AntiCorrelated.generate(50, 4, 123);
        let b = ObjectDistribution::AntiCorrelated.generate(50, 4, 123);
        let c = ObjectDistribution::AntiCorrelated.generate(50, 4, 124);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
