//! Deterministic update-stream workloads for the long-lived assignment
//! engine: seeded sequences of object / function arrivals and departures.
//!
//! A stream is generated against a snapshot of the live id populations, so
//! every departure names an id that is guaranteed to be alive at that point
//! of the sequence and every arrival mints a fresh id — the consumer can
//! apply the events blindly. Points for arriving objects follow any
//! [`ObjectDistribution`]; weights for arriving functions are uniform, like
//! the paper's default function workload.

use crate::{uniform_weight_functions, ObjectDistribution};
use pref_geom::{LinearFunction, Point};
use pref_rtree::RecordId;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One update of the streamed assignment problem.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateEvent {
    /// A new object arrives.
    InsertObject {
        /// Freshly minted record id (never reused within the stream).
        id: RecordId,
        /// Feature vector, normalized to `[0, 1]`.
        point: Point,
        /// Number of identical objects this arrival stands for (≥ 1; drawn
        /// uniformly from `1..=max_capacity`).
        capacity: u32,
    },
    /// A live object departs.
    RemoveObject {
        /// Id of the departing object.
        id: RecordId,
    },
    /// A new preference function (user) arrives.
    InsertFunction {
        /// Freshly minted function id (never reused within the stream).
        id: u64,
        /// The arriving preference function.
        function: LinearFunction,
        /// Number of identical requests this arrival stands for (≥ 1; drawn
        /// uniformly from `1..=max_capacity`).
        capacity: u32,
    },
    /// A live preference function departs.
    RemoveFunction {
        /// Id of the departing function.
        id: u64,
    },
}

/// Configuration of [`update_stream`].
#[derive(Debug, Clone)]
pub struct UpdateStreamConfig {
    /// Number of events to generate.
    pub num_events: usize,
    /// Dimensionality of arriving objects and functions.
    pub dims: usize,
    /// Distribution of arriving object points.
    pub distribution: ObjectDistribution,
    /// Probability that an event is an arrival (vs. a departure).
    pub insert_fraction: f64,
    /// Probability that an event targets the object side (vs. functions).
    pub object_fraction: f64,
    /// Departures never shrink the object population below this floor.
    pub min_objects: usize,
    /// Departures never shrink the function population below this floor.
    pub min_functions: usize,
    /// Upper bound of the capacity drawn for every arrival (objects and
    /// functions alike), uniform over `1..=max_capacity`. The default of 1
    /// keeps every streamed entity unit-capacity — and leaves streams
    /// generated before the knob existed byte-identical, because no capacity
    /// draw is consumed from the RNG in that case.
    pub max_capacity: u32,
    /// RNG seed; equal seeds give byte-identical streams.
    pub seed: u64,
}

impl Default for UpdateStreamConfig {
    fn default() -> Self {
        Self {
            num_events: 64,
            dims: 3,
            distribution: ObjectDistribution::Independent,
            insert_fraction: 0.5,
            object_fraction: 0.7,
            min_objects: 1,
            min_functions: 1,
            max_capacity: 1,
            seed: 0,
        }
    }
}

/// Generates a deterministic update stream against the given live
/// populations.
///
/// `live_objects` / `live_functions` are the ids alive before the first
/// event; arrivals mint ids strictly greater than every id ever seen, so the
/// stream never collides with the initial populations or with itself.
pub fn update_stream(
    config: &UpdateStreamConfig,
    live_objects: &[RecordId],
    live_functions: &[u64],
) -> Vec<UpdateEvent> {
    assert!(config.dims > 0, "streams need at least one dimension");
    assert!(
        config.max_capacity >= 1,
        "max_capacity must be at least 1 (capacities are drawn from 1..=max_capacity)"
    );
    assert!(
        live_objects.len() >= config.min_objects,
        "initial object population is below the configured floor"
    );
    assert!(
        live_functions.len() >= config.min_functions,
        "initial function population is below the configured floor"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut objects: Vec<RecordId> = live_objects.to_vec();
    let mut functions: Vec<u64> = live_functions.to_vec();
    // Ids are never reused, so the id space is consumable: minting must fail
    // loudly on exhaustion instead of silently wrapping around to 0 and
    // re-issuing ids that are (or were) alive.
    let mut next_object_id = objects
        .iter()
        .map(|r| r.0)
        .max()
        .map_or(0, |m| exhausted_check(m, "RecordId"));
    let mut next_function_id = functions
        .iter()
        .copied()
        .max()
        .map_or(0, |m| exhausted_check(m, "FunctionId"));

    // pre-drawn pools keep the per-event cost flat and the stream reproducible
    let arriving_points: Vec<Point> = config
        .distribution
        .generate(config.num_events, config.dims, config.seed ^ 0x0a11)
        .into_iter()
        .map(|(_, p)| p)
        .collect();
    let arriving_functions: Vec<LinearFunction> =
        uniform_weight_functions(config.num_events, config.dims, config.seed ^ 0x0f11);

    let mut events = Vec::with_capacity(config.num_events);
    for step in 0..config.num_events {
        let object_side = rng.gen_bool(config.object_fraction.clamp(0.0, 1.0));
        let mut insert = rng.gen_bool(config.insert_fraction.clamp(0.0, 1.0));
        // a departure that would break the population floor flips to an arrival
        if !insert {
            let at_floor = if object_side {
                objects.len() <= config.min_objects
            } else {
                functions.len() <= config.min_functions
            };
            if at_floor {
                insert = true;
            }
        }
        let event = match (object_side, insert) {
            (true, true) => {
                let id = RecordId(next_object_id);
                next_object_id = exhausted_check(next_object_id, "RecordId");
                objects.push(id);
                UpdateEvent::InsertObject {
                    id,
                    point: arriving_points[step].clone(),
                    capacity: draw_capacity(&mut rng, config.max_capacity),
                }
            }
            (true, false) => {
                let id = objects.swap_remove(rng.gen_range(0..objects.len()));
                UpdateEvent::RemoveObject { id }
            }
            (false, true) => {
                let id = next_function_id;
                next_function_id = exhausted_check(next_function_id, "FunctionId");
                functions.push(id);
                UpdateEvent::InsertFunction {
                    id,
                    function: arriving_functions[step].clone(),
                    capacity: draw_capacity(&mut rng, config.max_capacity),
                }
            }
            (false, false) => {
                let id = functions.swap_remove(rng.gen_range(0..functions.len()));
                UpdateEvent::RemoveFunction { id }
            }
        };
        events.push(event);
    }
    events
}

/// Draws an arrival capacity from `1..=max`. Unit-capacity streams
/// (`max == 1`) consume nothing from the RNG, so streams generated before
/// the `max_capacity` knob existed stay byte-identical.
fn draw_capacity(rng: &mut StdRng, max: u32) -> u32 {
    if max > 1 {
        rng.gen_range(1..=max)
    } else {
        1
    }
}

/// Reserves the successor of `id`, panicking with an explicit message when
/// the id space is exhausted (`id == u64::MAX` leaves no fresh successor).
fn exhausted_check(id: u64, what: &str) -> u64 {
    id.checked_add(1).unwrap_or_else(|| {
        panic!("{what} space exhausted: cannot mint a fresh id after {id} (ids are never reused)")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn base_config() -> UpdateStreamConfig {
        UpdateStreamConfig {
            num_events: 200,
            seed: 42,
            ..UpdateStreamConfig::default()
        }
    }

    fn initial() -> (Vec<RecordId>, Vec<u64>) {
        ((0..20).map(RecordId).collect(), (0..5).collect())
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let (objs, funs) = initial();
        let a = update_stream(&base_config(), &objs, &funs);
        let b = update_stream(&base_config(), &objs, &funs);
        assert_eq!(a, b);
        let c = update_stream(
            &UpdateStreamConfig {
                seed: 43,
                ..base_config()
            },
            &objs,
            &funs,
        );
        assert_ne!(a, c);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn departures_only_name_live_ids_and_floors_hold() {
        let (objs, funs) = initial();
        let config = UpdateStreamConfig {
            min_objects: 3,
            min_functions: 2,
            insert_fraction: 0.3, // departure-heavy: floors must engage
            ..base_config()
        };
        let events = update_stream(&config, &objs, &funs);
        let mut live_o: HashSet<u64> = objs.iter().map(|r| r.0).collect();
        let mut live_f: HashSet<u64> = funs.iter().copied().collect();
        for e in &events {
            match e {
                UpdateEvent::InsertObject {
                    id,
                    point,
                    capacity,
                } => {
                    assert!(live_o.insert(id.0), "object id {id} reused");
                    assert_eq!(point.dims(), config.dims);
                    assert_eq!(*capacity, 1, "default streams are unit-capacity");
                }
                UpdateEvent::RemoveObject { id } => {
                    assert!(live_o.remove(&id.0), "removed unknown object {id}");
                    assert!(live_o.len() >= config.min_objects);
                }
                UpdateEvent::InsertFunction {
                    id,
                    function,
                    capacity,
                } => {
                    assert!(live_f.insert(*id), "function id {id} reused");
                    assert_eq!(function.dims(), config.dims);
                    assert_eq!(*capacity, 1, "default streams are unit-capacity");
                }
                UpdateEvent::RemoveFunction { id } => {
                    assert!(live_f.remove(id), "removed unknown function {id}");
                    assert!(live_f.len() >= config.min_functions);
                }
            }
        }
    }

    #[test]
    fn fresh_ids_never_collide_with_initial_populations() {
        let objs: Vec<RecordId> = [7u64, 100, 3].into_iter().map(RecordId).collect();
        let funs: Vec<u64> = vec![11, 2];
        let events = update_stream(&base_config(), &objs, &funs);
        for e in &events {
            match e {
                UpdateEvent::InsertObject { id, .. } => assert!(id.0 > 100),
                UpdateEvent::InsertFunction { id, .. } => assert!(*id > 11),
                _ => {}
            }
        }
    }

    #[test]
    fn insert_only_streams_never_remove() {
        let (objs, funs) = initial();
        let config = UpdateStreamConfig {
            insert_fraction: 1.0,
            ..base_config()
        };
        let events = update_stream(&config, &objs, &funs);
        assert!(events.iter().all(|e| matches!(
            e,
            UpdateEvent::InsertObject { .. } | UpdateEvent::InsertFunction { .. }
        )));
    }

    #[test]
    fn capacitated_streams_draw_bounded_capacities_on_both_sides() {
        let (objs, funs) = initial();
        let config = UpdateStreamConfig {
            max_capacity: 4,
            insert_fraction: 0.8,
            object_fraction: 0.5,
            ..base_config()
        };
        let events = update_stream(&config, &objs, &funs);
        let mut object_caps: HashSet<u32> = HashSet::new();
        let mut function_caps: HashSet<u32> = HashSet::new();
        for e in &events {
            match e {
                UpdateEvent::InsertObject { capacity, .. } => {
                    assert!((1..=4).contains(capacity));
                    object_caps.insert(*capacity);
                }
                UpdateEvent::InsertFunction { capacity, .. } => {
                    assert!((1..=4).contains(capacity));
                    function_caps.insert(*capacity);
                }
                _ => {}
            }
        }
        // 200 events at 80% arrivals: all four capacities show up on both
        // sides with overwhelming probability for this fixed seed
        assert!(object_caps.len() > 1, "object capacities never exceeded 1");
        assert!(
            function_caps.len() > 1,
            "function capacities never exceeded 1"
        );
    }

    #[test]
    fn unit_capacity_knob_leaves_streams_byte_identical() {
        // max_capacity: 1 must not consume RNG draws, so the stream equals
        // the default-config stream event for event
        let (objs, funs) = initial();
        let explicit = update_stream(
            &UpdateStreamConfig {
                max_capacity: 1,
                ..base_config()
            },
            &objs,
            &funs,
        );
        let default = update_stream(&base_config(), &objs, &funs);
        assert_eq!(explicit, default);
    }

    #[test]
    #[should_panic(expected = "max_capacity must be at least 1")]
    fn zero_max_capacity_is_rejected() {
        let (objs, funs) = initial();
        let _ = update_stream(
            &UpdateStreamConfig {
                max_capacity: 0,
                ..base_config()
            },
            &objs,
            &funs,
        );
    }

    #[test]
    #[should_panic(expected = "RecordId space exhausted")]
    fn object_id_exhaustion_panics_instead_of_wrapping() {
        // an initial population already holding the maximum id leaves no
        // fresh successor to reserve
        let objs = vec![RecordId(u64::MAX)];
        let funs = vec![0u64];
        let _ = update_stream(&base_config(), &objs, &funs);
    }

    #[test]
    #[should_panic(expected = "FunctionId space exhausted")]
    fn function_id_exhaustion_panics_instead_of_wrapping() {
        let objs = vec![RecordId(0)];
        let funs = vec![u64::MAX];
        let _ = update_stream(&base_config(), &objs, &funs);
    }

    #[test]
    fn arrival_points_follow_the_configured_distribution_bounds() {
        let (objs, funs) = initial();
        let config = UpdateStreamConfig {
            distribution: ObjectDistribution::AntiCorrelated,
            insert_fraction: 1.0,
            object_fraction: 1.0,
            ..base_config()
        };
        for e in update_stream(&config, &objs, &funs) {
            if let UpdateEvent::InsertObject { point, .. } = e {
                assert!(point.coords().iter().all(|c| (0.0..=1.0).contains(c)));
            }
        }
    }
}
