//! Columnar (SoA) scoring kernels.
//!
//! Preference functions are linear, so scoring a page of objects is a dense
//! dot-product batch — a memory-bound kernel. This module lays points out in
//! **structure-of-arrays** form ([`SoaBlock`]: one contiguous `f64` lane per
//! dimension) and scores whole blocks with fixed-width-chunked kernels that
//! LLVM autovectorizes on stable Rust (no `unsafe`, no nightly `std::simd`):
//! vectorization runs across the *point* axis, so each point's score is still
//! accumulated dimension-by-dimension in the exact order of the scalar path.
//!
//! # Determinism contract
//!
//! Every kernel reproduces the scalar summation order bit-for-bit:
//!
//! * [`dot`] computes `acc = 0.0; acc += w[d]·c[d]` for `d = 0, 1, …` — the
//!   same floating-point sequence as [`crate::LinearFunction::score_coords`]
//!   and the sorted-list scorers built on effective weights.
//! * [`score_block`] computes the identical per-point sequence for every lane
//!   row, then multiplies by the priority (`x * 1.0 == x` exactly, so folding
//!   an absent priority is also bit-neutral).
//!
//! Because scores are bit-identical, every downstream tie-break (lowest
//! function index, lowest dense object index) resolves exactly as the scalar
//! path would — batch scoring can never move a tie.
//!
//! Kernels are hot-loop code: they must not allocate per call (the repo's
//! `kernel-no-alloc` lint enforces the `Vec::new`/`to_vec`/`collect`
//! denylist on this module). Output buffers are caller-owned scratch that
//! amortizes to zero allocations.

use crate::{LinearFunction, Point};
use std::sync::Arc;

/// Fixed chunk width of the block kernels. Eight `f64`s span a full AVX-512
/// register, two AVX2 registers, or four SSE2 registers — wide enough for the
/// autovectorizer on any x86-64/AArch64 baseline, small enough that the
/// scalar remainder loop stays negligible.
pub const LANE_CHUNK: usize = 8;

/// A columnar block of points: dimension-major `f64` lanes.
///
/// `lane(d)[i]` is coordinate `d` of point `i`. The block is a reusable
/// scratch structure: [`SoaBlock::clear`] keeps lane capacity so steady-state
/// refills allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct SoaBlock {
    dims: usize,
    len: usize,
    lanes: Vec<Vec<f64>>,
}

impl SoaBlock {
    /// Creates an empty block; the dimensionality is fixed by the first push.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of points in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the block holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the stored points (0 while empty and never pushed).
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The contiguous lane of dimension `d`.
    ///
    /// # Panics
    /// Panics if `d >= self.dims()`.
    #[inline]
    pub fn lane(&self, d: usize) -> &[f64] {
        &self.lanes[d]
    }

    /// Drops every point but keeps the lanes' capacity for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
        for lane in &mut self.lanes {
            lane.clear();
        }
    }

    /// Appends one point given as a raw coordinate slice.
    ///
    /// # Panics
    /// Panics on a dimensionality mismatch with the points already stored.
    pub fn push_coords(&mut self, coords: &[f64]) {
        if self.lanes.len() != coords.len() {
            assert!(
                self.lanes.iter().all(Vec::is_empty),
                "SoaBlock dimensionality changed mid-fill: {} vs {}",
                self.lanes.len(),
                coords.len()
            );
            // lint: allow(kernel-no-alloc) -- one-time lane growth on first fill
            self.lanes.resize_with(coords.len(), Vec::new);
        }
        self.dims = coords.len();
        for (lane, &c) in self.lanes.iter_mut().zip(coords.iter()) {
            lane.push(c);
        }
        self.len += 1;
    }

    /// Appends one [`Point`].
    #[inline]
    pub fn push_point(&mut self, point: &Point) {
        self.push_coords(point.coords());
    }

    /// Removes point `i` by swapping the last point into its slot — the same
    /// order change as `Vec::swap_remove`, so a block can mirror a vector of
    /// owners exactly.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn swap_remove(&mut self, i: usize) {
        assert!(i < self.len, "swap_remove index {i} out of bounds");
        for lane in &mut self.lanes {
            lane.swap_remove(i);
        }
        self.len -= 1;
    }
}

/// Scalar dot product in the canonical summation order: `acc = 0.0` then
/// `acc += w[d]·c[d]` for ascending `d`. Every scoring path in the workspace
/// routes through this kernel (directly or via [`score_block`]), which is
/// what keeps batch and scalar scores bit-identical.
///
/// # Panics
/// Debug-asserts equal lengths; out-of-range dimensions panic via indexing.
#[inline]
pub fn dot(weights: &[f64], coords: &[f64]) -> f64 {
    debug_assert_eq!(weights.len(), coords.len(), "dimension mismatch");
    // Specialized fixed-trip-count bodies for the common dimensionalities let
    // LLVM fully unroll; the accumulation order is identical in every arm.
    match weights.len() {
        1 => dot_const::<1>(weights, coords),
        2 => dot_const::<2>(weights, coords),
        3 => dot_const::<3>(weights, coords),
        4 => dot_const::<4>(weights, coords),
        5 => dot_const::<5>(weights, coords),
        6 => dot_const::<6>(weights, coords),
        7 => dot_const::<7>(weights, coords),
        8 => dot_const::<8>(weights, coords),
        _ => {
            let mut acc = 0.0;
            for (w, c) in weights.iter().zip(coords.iter()) {
                acc += w * c;
            }
            acc
        }
    }
}

#[inline]
fn dot_const<const D: usize>(weights: &[f64], coords: &[f64]) -> f64 {
    let w = &weights[..D];
    let c = &coords[..D];
    let mut acc = 0.0;
    for d in 0..D {
        acc += w[d] * c[d];
    }
    acc
}

/// Scores every point of `block` with one weight vector: `out[i] = priority ·
/// Σ_d weights[d]·lane(d)[i]`, accumulated per point in ascending-dimension
/// order (bit-identical to [`dot`] followed by the priority multiply).
///
/// `out` is caller-owned scratch; it is cleared and resized to `block.len()`.
///
/// # Panics
/// Panics if `weights.len() != block.dims()` (unless the block is empty).
pub fn score_block(weights: &[f64], priority: f64, block: &SoaBlock, out: &mut Vec<f64>) {
    out.clear();
    if block.is_empty() {
        return;
    }
    assert_eq!(weights.len(), block.dims(), "dimension mismatch");
    out.resize(block.len(), 0.0);
    match weights.len() {
        1 => score_lanes_const::<1>(weights, priority, block, out),
        2 => score_lanes_const::<2>(weights, priority, block, out),
        3 => score_lanes_const::<3>(weights, priority, block, out),
        4 => score_lanes_const::<4>(weights, priority, block, out),
        5 => score_lanes_const::<5>(weights, priority, block, out),
        6 => score_lanes_const::<6>(weights, priority, block, out),
        7 => score_lanes_const::<7>(weights, priority, block, out),
        8 => score_lanes_const::<8>(weights, priority, block, out),
        _ => score_lanes_generic(weights, priority, block, out),
    }
}

/// Fixed-dimensionality block kernel: the dimension loop has a compile-time
/// trip count, the point loop runs in [`LANE_CHUNK`]-wide chunks over slices
/// pre-cut to a common length, so the autovectorizer sees a branch-free
/// multiply-add ladder across the point axis.
#[inline]
fn score_lanes_const<const D: usize>(
    weights: &[f64],
    priority: f64,
    block: &SoaBlock,
    out: &mut [f64],
) {
    let n = out.len();
    let mut w = [0.0f64; D];
    let mut cols: [&[f64]; D] = [&[]; D];
    for d in 0..D {
        w[d] = weights[d];
        cols[d] = &block.lane(d)[..n];
    }
    let mut base = 0;
    while base + LANE_CHUNK <= n {
        for j in 0..LANE_CHUNK {
            let i = base + j;
            let mut acc = 0.0;
            for d in 0..D {
                acc += w[d] * cols[d][i];
            }
            out[i] = acc * priority;
        }
        base += LANE_CHUNK;
    }
    for i in base..n {
        let mut acc = 0.0;
        for d in 0..D {
            acc += w[d] * cols[d][i];
        }
        out[i] = acc * priority;
    }
}

/// Runtime-dimensionality fallback (D > 8), dimension-major: one clean
/// slice-to-slice multiply-add pass per dimension into the accumulator
/// buffer, then one priority pass. Per point the accumulator still starts at
/// `0.0` and adds `w[d]·c[d]` in ascending-`d` order — the canonical [`dot`]
/// sequence — so the pass order is a pure layout change, not a reassociation.
fn score_lanes_generic(weights: &[f64], priority: f64, block: &SoaBlock, out: &mut [f64]) {
    let n = out.len();
    out.fill(0.0);
    for (d, &w) in weights.iter().enumerate() {
        let lane = &block.lane(d)[..n];
        for (acc, &c) in out.iter_mut().zip(lane) {
            *acc += w * c;
        }
    }
    for acc in out.iter_mut() {
        *acc *= priority;
    }
}

/// Returns the index of the first point in `block` that *dominates* `coords`
/// (component-wise `>=` everywhere, `>` somewhere — the paper's Section 2.2
/// definition, larger-is-better), or `None`. This is the columnar form of the
/// skyline pruning scan: the lanes are contiguous, so the scan streams cache
/// lines instead of chasing per-point heap boxes.
pub fn first_dominator(block: &SoaBlock, coords: &[f64]) -> Option<usize> {
    if block.is_empty() {
        return None;
    }
    debug_assert_eq!(block.dims(), coords.len(), "dimension mismatch");
    let dims = block.dims();
    'points: for i in 0..block.len() {
        let mut strict = false;
        for (d, &c) in coords.iter().enumerate().take(dims) {
            let v = block.lane(d)[i];
            if v < c {
                continue 'points;
            }
            strict |= v > c;
        }
        if strict {
            return Some(i);
        }
    }
    None
}

/// A shared, immutable table of scoring weight vectors — the batch-scoring
/// face of a function set.
///
/// The rows live behind [`Arc`]s, so a table clone is two pointer bumps: the
/// parallel solver hands clones to pool workers without copying any weights.
/// Row `fi` scores a point as `priority[fi] · Σ_d weights[fi][d]·c[d]`, in
/// the canonical [`dot`] order. Sources that fold the priority into the
/// weights (effective coefficients) use a priority of `1.0`, which is exact.
#[derive(Debug, Clone)]
pub struct ScoreTable {
    weights: Arc<Vec<Box<[f64]>>>,
    priorities: Arc<Vec<f64>>,
    dims: usize,
}

impl ScoreTable {
    /// Builds a table from full functions: plain weights plus the priority
    /// multiplier, matching [`LinearFunction::score`] bit-for-bit.
    pub fn from_functions(functions: &[LinearFunction]) -> Self {
        let dims = functions.first().map_or(0, LinearFunction::dims);
        let weights: Vec<Box<[f64]>> = functions
            .iter()
            // lint: allow(kernel-no-alloc) -- table construction is setup, not a scan
            .map(|f| f.weights().to_vec().into_boxed_slice())
            // lint: allow(kernel-no-alloc) -- table construction is setup, not a scan
            .collect();
        // lint: allow(kernel-no-alloc) -- table construction is setup, not a scan
        let priorities: Vec<f64> = functions.iter().map(LinearFunction::priority).collect();
        Self {
            weights: Arc::new(weights),
            priorities: Arc::new(priorities),
            dims,
        }
    }

    /// Builds a table from pre-folded effective coefficient rows (priority
    /// already multiplied in); rows score with a neutral priority of `1.0`.
    pub fn from_effective_rows(rows: &[Vec<f64>]) -> Self {
        let dims = rows.first().map_or(0, Vec::len);
        let weights: Vec<Box<[f64]>> = rows
            .iter()
            .map(|r| r.clone().into_boxed_slice())
            // lint: allow(kernel-no-alloc) -- table construction is setup, not a scan
            .collect();
        // lint: allow(kernel-no-alloc) -- table construction is setup, not a scan
        let priorities = vec![1.0; rows.len()];
        Self {
            weights: Arc::new(weights),
            priorities: Arc::new(priorities),
            dims,
        }
    }

    /// Number of rows (functions).
    #[inline]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` when the table has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Dimensionality of the rows.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The raw weight row of function `fi`.
    #[inline]
    pub fn row(&self, fi: usize) -> &[f64] {
        &self.weights[fi]
    }

    /// The priority multiplier of function `fi`.
    #[inline]
    pub fn priority(&self, fi: usize) -> f64 {
        self.priorities[fi]
    }

    /// Scores one coordinate slice with row `fi` (canonical scalar order).
    #[inline]
    pub fn score_coords(&self, fi: usize, coords: &[f64]) -> f64 {
        dot(&self.weights[fi], coords) * self.priorities[fi]
    }

    /// Scores one point with row `fi`.
    #[inline]
    pub fn score(&self, fi: usize, point: &Point) -> f64 {
        self.score_coords(fi, point.coords())
    }

    /// Batch-scores a whole block with row `fi` into caller scratch.
    #[inline]
    pub fn score_block(&self, fi: usize, block: &SoaBlock, out: &mut Vec<f64>) {
        score_block(&self.weights[fi], self.priorities[fi], block, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn scalar_score(weights: &[f64], priority: f64, coords: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (w, c) in weights.iter().zip(coords.iter()) {
            acc += w * c;
        }
        acc * priority
    }

    #[test]
    fn block_roundtrip_and_swap_remove() {
        let mut b = SoaBlock::new();
        assert!(b.is_empty());
        b.push_coords(&[0.1, 0.2]);
        b.push_coords(&[0.3, 0.4]);
        b.push_coords(&[0.5, 0.6]);
        assert_eq!((b.len(), b.dims()), (3, 2));
        assert_eq!(b.lane(0), &[0.1, 0.3, 0.5]);
        assert_eq!(b.lane(1), &[0.2, 0.4, 0.6]);
        b.swap_remove(0);
        assert_eq!(b.lane(0), &[0.5, 0.3]);
        assert_eq!(b.lane(1), &[0.6, 0.4]);
        b.clear();
        assert!(b.is_empty());
        // refilling after clear may change dimensionality
        b.push_coords(&[1.0, 2.0, 3.0]);
        assert_eq!(b.dims(), 3);
    }

    #[test]
    #[should_panic(expected = "dimensionality changed")]
    fn mixed_dims_rejected() {
        let mut b = SoaBlock::new();
        b.push_coords(&[0.1, 0.2]);
        b.push_coords(&[0.1, 0.2, 0.3]);
    }

    #[test]
    fn dot_matches_scalar_for_every_dimensionality() {
        for dims in 1..=12 {
            let w: Vec<f64> = (0..dims).map(|d| 0.1 + d as f64 * 0.07).collect();
            let c: Vec<f64> = (0..dims).map(|d| 0.9 - d as f64 * 0.05).collect();
            assert_eq!(
                dot(&w, &c).to_bits(),
                scalar_score(&w, 1.0, &c).to_bits(),
                "dims {dims}"
            );
        }
    }

    #[test]
    fn score_block_matches_scalar_bitwise_across_remainders() {
        // every chunk-remainder length around the chunk width
        for n in 0..(3 * LANE_CHUNK + 1) {
            for dims in 1..=10 {
                let w: Vec<f64> = (0..dims).map(|d| (d as f64 + 1.0) * 0.123).collect();
                let mut block = SoaBlock::new();
                let mut points = Vec::new();
                for i in 0..n {
                    let p: Vec<f64> = (0..dims)
                        .map(|d| ((i * dims + d) as f64).sin().abs())
                        .collect();
                    block.push_coords(&p);
                    points.push(p);
                }
                let mut out = Vec::new();
                score_block(&w, 2.5, &block, &mut out);
                assert_eq!(out.len(), n);
                for (i, p) in points.iter().enumerate() {
                    assert_eq!(
                        out[i].to_bits(),
                        scalar_score(&w, 2.5, p).to_bits(),
                        "n={n} dims={dims} i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn score_block_handles_denormals_bitwise() {
        let tiny = f64::MIN_POSITIVE / 8.0; // a subnormal
        let w = vec![tiny, 1.0, tiny];
        let mut block = SoaBlock::new();
        block.push_coords(&[tiny, tiny, 1.0]);
        block.push_coords(&[1.0, tiny, tiny]);
        let mut out = Vec::new();
        score_block(&w, 1.0, &block, &mut out);
        for (i, p) in [[tiny, tiny, 1.0], [1.0, tiny, tiny]].iter().enumerate() {
            assert_eq!(out[i].to_bits(), scalar_score(&w, 1.0, p).to_bits());
        }
    }

    #[test]
    fn first_dominator_matches_pointwise_dominance() {
        let pts = [[0.2, 0.9], [0.5, 0.5], [0.9, 0.2]];
        let mut block = SoaBlock::new();
        for p in &pts {
            block.push_coords(p);
        }
        // dominated by the second point only
        assert_eq!(first_dominator(&block, &[0.4, 0.4]), Some(1));
        // dominated by nothing
        assert_eq!(first_dominator(&block, &[0.95, 0.95]), None);
        // equal to a block point: equality does not dominate
        assert_eq!(first_dominator(&block, &[0.5, 0.5]), None);
        // dominated by the first point
        assert_eq!(first_dominator(&block, &[0.1, 0.8]), Some(0));
        assert_eq!(first_dominator(&SoaBlock::new(), &[0.1]), None);
    }

    #[test]
    fn score_table_from_functions_matches_linear_function_bitwise() {
        let fns = vec![
            LinearFunction::with_priority(vec![0.8, 0.2], 3.0).unwrap(),
            LinearFunction::new(vec![0.3, 0.7]).unwrap(),
        ];
        let table = ScoreTable::from_functions(&fns);
        assert_eq!((table.len(), table.dims()), (2, 2));
        let p = Point::from_slice(&[0.41, 0.73]);
        for (fi, f) in fns.iter().enumerate() {
            assert_eq!(table.score(fi, &p).to_bits(), f.score(&p).to_bits());
        }
        let mut block = SoaBlock::new();
        block.push_point(&p);
        let mut out = Vec::new();
        table.score_block(0, &block, &mut out);
        assert_eq!(out[0].to_bits(), fns[0].score(&p).to_bits());
    }

    #[test]
    fn score_table_effective_rows_are_priority_neutral() {
        let rows = vec![vec![0.5, 1.5], vec![0.25, 0.75]];
        let table = ScoreTable::from_effective_rows(&rows);
        let c = [0.33, 0.66];
        for (fi, row) in rows.iter().enumerate() {
            // Σ w·c with no trailing multiply, bit-for-bit (x·1.0 == x)
            let want: f64 = scalar_score(row, 1.0, &c);
            assert_eq!(table.score_coords(fi, &c).to_bits(), want.to_bits());
        }
    }

    proptest! {
        #[test]
        fn prop_block_scores_bit_identical_to_scalar(
            dims in 1usize..=9,
            n in 0usize..40,
            seed in 0u64..1000,
            priority in prop_oneof![Just(1.0f64), 0.5f64..4.0],
        ) {
            // duplicated points included on purpose: i % 7 collides
            let coord = |i: usize, d: usize| {
                let x = (seed as f64 + (i % 7) as f64 * 1.37 + d as f64 * 0.61).sin();
                x.abs()
            };
            let w: Vec<f64> = (0..dims).map(|d| coord(97, d) + 1e-3).collect();
            let mut block = SoaBlock::new();
            let mut pts = Vec::new();
            for i in 0..n {
                let p: Vec<f64> = (0..dims).map(|d| coord(i, d)).collect();
                block.push_coords(&p);
                pts.push(p);
            }
            let mut out = Vec::new();
            score_block(&w, priority, &block, &mut out);
            prop_assert_eq!(out.len(), n);
            for (i, p) in pts.iter().enumerate() {
                prop_assert_eq!(out[i].to_bits(), scalar_score(&w, priority, p).to_bits());
                prop_assert_eq!(dot(&w, p).to_bits(), scalar_score(&w, 1.0, p).to_bits());
            }
        }
    }
}
