//! Exclusive dominance region (EDR) helpers.
//!
//! When a skyline object `o` is removed, the only points that may enter the
//! skyline are the ones *exclusively dominated* by `o`: dominated by `o` but
//! not dominated by any remaining skyline object (Section 2.2, Figure 3).
//! These helpers implement the membership and intersection predicates used by
//! the DeltaSky-style baseline maintenance and by tests of `UpdateSkyline`;
//! they deliberately avoid materializing the EDR (which consists of up to
//! `|Osky|^D` hyper-rectangles) and instead answer the two questions the
//! algorithms actually need:
//!
//! * is a concrete point inside the EDR? ([`point_in_edr`])
//! * may an MBR contain EDR points? ([`mbr_may_intersect_edr`])

use crate::{Mbr, Point};

/// The (closed) dominance region of `o`: the box `[origin, o]` containing all
/// points that `o` dominates or equals.
pub fn dominance_region(o: &Point) -> Mbr {
    Mbr::new(vec![0.0; o.dims()], o.coords().to_vec())
        .expect("dominance region corners are always valid")
}

/// `true` iff `p` lies in the exclusive dominance region of `removed` with
/// respect to the remaining skyline objects: `removed` dominates `p` (or
/// coincides with it) and no remaining skyline object dominates `p`.
pub fn point_in_edr<'a, I>(p: &Point, removed: &Point, remaining_skyline: I) -> bool
where
    I: IntoIterator<Item = &'a Point>,
{
    if !removed.dominates_or_equal(p) {
        return false;
    }
    !remaining_skyline.into_iter().any(|s| s.dominates(p))
}

/// Conservative intersection test between an MBR and the EDR of `removed`.
///
/// The MBR may contain points of the EDR only if
///
/// 1. it overlaps the dominance region of `removed`
///    (`mbr.lower[d] <= removed[d]` in every dimension), and
/// 2. the best corner of the *clipped* MBR (the part inside the dominance
///    region) is not dominated by any remaining skyline object — otherwise
///    every clipped point is dominated and none can be exclusive to `removed`.
///
/// This is the `O(|Osky|·D)` style of check that DeltaSky performs instead of
/// enumerating the EDR rectangles; it never returns `false` for an MBR that
/// truly intersects the EDR (soundness is what the traversals require).
pub fn mbr_may_intersect_edr<'a, I>(mbr: &Mbr, removed: &Point, remaining_skyline: I) -> bool
where
    I: IntoIterator<Item = &'a Point>,
{
    let dims = removed.dims();
    debug_assert_eq!(mbr.dims(), dims);
    // 1. overlap with the dominance region of `removed`
    for d in 0..dims {
        if mbr.lower()[d] > removed.coord(d) {
            return false;
        }
    }
    // best corner of the clipped MBR
    let clipped_top: Vec<f64> = (0..dims)
        .map(|d| mbr.upper()[d].min(removed.coord(d)))
        .collect();
    let clipped_top = Point::from_slice(&clipped_top);
    // 2. not entirely dominated by a remaining skyline object
    !remaining_skyline
        .into_iter()
        .any(|s| s.dominates(&clipped_top))
}

/// Computes, by brute force over candidate points, the set of points that
/// enter the skyline when `removed` is deleted. Used as a test oracle for the
/// incremental maintenance algorithms.
pub fn skyline_delta_after_removal<'a>(
    removed: &Point,
    remaining_skyline: &[Point],
    candidates: impl IntoIterator<Item = &'a Point>,
) -> Vec<Point> {
    let candidates: Vec<&Point> = candidates.into_iter().collect();
    let mut delta: Vec<Point> = Vec::new();
    for (i, &c) in candidates.iter().enumerate() {
        if !point_in_edr(c, removed, remaining_skyline.iter()) {
            continue;
        }
        // c must additionally not be dominated by another candidate in the EDR
        let dominated_by_candidate = candidates
            .iter()
            .enumerate()
            .any(|(j, &other)| j != i && other.dominates(c));
        if !dominated_by_candidate {
            delta.push(c.clone());
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(c: &[f64]) -> Point {
        Point::from_slice(c)
    }

    #[test]
    fn dominance_region_is_box_to_origin() {
        let o = p(&[0.6, 0.3]);
        let dr = dominance_region(&o);
        assert_eq!(dr.lower(), &[0.0, 0.0]);
        assert_eq!(dr.upper(), &[0.6, 0.3]);
        assert!(dr.contains_point(&p(&[0.2, 0.1])));
        assert!(!dr.contains_point(&p(&[0.7, 0.1])));
    }

    #[test]
    fn point_in_edr_basic() {
        // skyline {a=(0.9,0.2), d=(0.5,0.5), b=(0.2,0.9)}; remove d.
        let a = p(&[0.9, 0.2]);
        let b = p(&[0.2, 0.9]);
        let d = p(&[0.5, 0.5]);
        let remaining = [a.clone(), b.clone()];
        // (0.45, 0.45) is dominated only by d => in EDR
        assert!(point_in_edr(&p(&[0.45, 0.45]), &d, remaining.iter()));
        // (0.1, 0.1) is dominated by d but also by a? a=(0.9,0.2) dominates (0.1,0.1).
        assert!(!point_in_edr(&p(&[0.1, 0.1]), &d, remaining.iter()));
        // (0.6, 0.4) is not dominated by d at all
        assert!(!point_in_edr(&p(&[0.6, 0.4]), &d, remaining.iter()));
    }

    #[test]
    fn edr_of_figure3_example() {
        // Figure 3(a): skyline {a, c, d, i}; object d is removed; nothing in m1
        // (which lies outside the EDR) should qualify.
        let a = p(&[0.20, 0.95]);
        let c = p(&[0.55, 0.80]);
        let d = p(&[0.70, 0.60]);
        let i = p(&[0.90, 0.30]);
        let remaining = [a, c.clone(), i.clone()];
        // A point under c and d but above i in y, below c in x:
        let q = p(&[0.65, 0.55]);
        assert!(point_in_edr(&q, &d, remaining.iter()));
        // A point dominated by c is not exclusive to d:
        let r = p(&[0.50, 0.70]);
        assert!(!point_in_edr(&r, &d, remaining.iter()));
    }

    #[test]
    fn mbr_intersection_is_sound() {
        let d = p(&[0.7, 0.6]);
        let remaining = [p(&[0.2, 0.95]), p(&[0.9, 0.3])];
        // An MBR fully inside the EDR
        let inside = Mbr::new(vec![0.4, 0.35], vec![0.65, 0.55]).unwrap();
        assert!(mbr_may_intersect_edr(&inside, &d, remaining.iter()));
        // An MBR entirely to the right of d's dominance region
        let outside = Mbr::new(vec![0.75, 0.1], vec![0.9, 0.2]).unwrap();
        assert!(!mbr_may_intersect_edr(&outside, &d, remaining.iter()));
        // An MBR whose clipped best corner is dominated by a remaining point
        let dominated = Mbr::new(vec![0.0, 0.0], vec![0.1, 0.2]).unwrap();
        assert!(!mbr_may_intersect_edr(&dominated, &d, remaining.iter()));
    }

    #[test]
    fn mbr_intersection_never_misses_a_point_in_edr() {
        // Soundness check on a grid of tiny MBRs: if a point is in the EDR,
        // the MBR containing it must pass the intersection test.
        let d = p(&[0.7, 0.6]);
        let remaining = [p(&[0.2, 0.95]), p(&[0.9, 0.3])];
        let steps = 20;
        for xi in 0..steps {
            for yi in 0..steps {
                let x = xi as f64 / steps as f64;
                let y = yi as f64 / steps as f64;
                let q = p(&[x, y]);
                if point_in_edr(&q, &d, remaining.iter()) {
                    let cell = Mbr::new(vec![x, y], vec![x + 0.01, y + 0.01]).unwrap();
                    assert!(
                        mbr_may_intersect_edr(&cell, &d, remaining.iter()),
                        "missed EDR point at ({x}, {y})"
                    );
                }
            }
        }
    }

    #[test]
    fn delta_oracle_finds_new_skyline_points() {
        // skyline {e=(0.8,0.8)}; below it: d=(0.7,0.75), i=(0.75,0.4), c=(0.3,0.78),
        // and k=(0.6,0.6) dominated by d.
        let e = p(&[0.8, 0.8]);
        let dd = p(&[0.7, 0.75]);
        let i = p(&[0.75, 0.4]);
        let c = p(&[0.3, 0.78]);
        let k = p(&[0.6, 0.6]);
        let candidates = [dd.clone(), i.clone(), c.clone(), k];
        let delta = skyline_delta_after_removal(&e, &[], candidates.iter());
        assert!(delta.contains(&dd));
        assert!(delta.contains(&i));
        assert!(delta.contains(&c));
        assert_eq!(delta.len(), 3, "k is dominated by d and must not appear");
    }
}
