//! Minimum bounding rectangles and the pruning predicates used by
//! branch-and-bound skyline (BBS) and branch-and-bound ranked search (BRS).

use crate::{GeomError, GeomResult, LinearFunction, Point};
use serde::{Deserialize, Serialize};

/// An axis-aligned minimum bounding rectangle in the preference space.
///
/// The *top corner* (`upper`) is the best possible object inside the MBR under
/// any monotone preference function; it drives both BBS ordering (L1 distance
/// to the sky point) and BRS ordering (`maxscore`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mbr {
    lower: Box<[f64]>,
    upper: Box<[f64]>,
}

impl Mbr {
    /// Creates an MBR from explicit lower/upper corners.
    ///
    /// Returns an error if the corners have different dimensionalities, are
    /// empty, or `lower[i] > upper[i]` for some dimension.
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> GeomResult<Self> {
        if lower.is_empty() {
            return Err(GeomError::EmptyDimensions);
        }
        if lower.len() != upper.len() {
            return Err(GeomError::DimensionMismatch {
                left: lower.len(),
                right: upper.len(),
            });
        }
        for (dim, (&lo, &hi)) in lower.iter().zip(upper.iter()).enumerate() {
            if !lo.is_finite() {
                return Err(GeomError::NonFiniteCoordinate { dim, value: lo });
            }
            if !hi.is_finite() {
                return Err(GeomError::NonFiniteCoordinate { dim, value: hi });
            }
            if lo > hi {
                return Err(GeomError::InvalidWeights(format!(
                    "MBR lower bound {lo} exceeds upper bound {hi} in dimension {dim}"
                )));
            }
        }
        Ok(Self {
            lower: lower.into_boxed_slice(),
            upper: upper.into_boxed_slice(),
        })
    }

    /// The degenerate MBR covering exactly one point.
    pub fn from_point(p: &Point) -> Self {
        Self {
            lower: p.coords().to_vec().into_boxed_slice(),
            upper: p.coords().to_vec().into_boxed_slice(),
        }
    }

    /// The smallest MBR covering a non-empty set of points.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn covering_points<'a, I>(points: I) -> Self
    where
        I: IntoIterator<Item = &'a Point>,
    {
        let mut iter = points.into_iter();
        let first = iter
            .next()
            .expect("covering_points requires at least one point");
        let mut mbr = Self::from_point(first);
        for p in iter {
            mbr.expand_to_point(p);
        }
        mbr
    }

    /// The smallest MBR covering a non-empty set of MBRs.
    ///
    /// # Panics
    /// Panics if `mbrs` is empty.
    pub fn covering<'a, I>(mbrs: I) -> Self
    where
        I: IntoIterator<Item = &'a Mbr>,
    {
        let mut iter = mbrs.into_iter();
        let mut acc = iter
            .next()
            .expect("covering requires at least one MBR")
            .clone();
        for m in iter {
            acc.expand_to_mbr(m);
        }
        acc
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lower.len()
    }

    /// Lower corner (worst corner) coordinates.
    #[inline]
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Upper corner (best corner) coordinates.
    #[inline]
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Best corner as a [`Point`]; the most preferable object the MBR could
    /// contain under any monotone function.
    pub fn top_corner(&self) -> Point {
        Point::from_slice(&self.upper)
    }

    /// Worst corner as a [`Point`].
    pub fn bottom_corner(&self) -> Point {
        Point::from_slice(&self.lower)
    }

    /// Grows the MBR so it also covers `p`.
    pub fn expand_to_point(&mut self, p: &Point) {
        debug_assert_eq!(self.dims(), p.dims());
        for (dim, &c) in p.coords().iter().enumerate() {
            if c < self.lower[dim] {
                self.lower[dim] = c;
            }
            if c > self.upper[dim] {
                self.upper[dim] = c;
            }
        }
    }

    /// Grows the MBR so it also covers `other`.
    pub fn expand_to_mbr(&mut self, other: &Mbr) {
        debug_assert_eq!(self.dims(), other.dims());
        for dim in 0..self.dims() {
            if other.lower[dim] < self.lower[dim] {
                self.lower[dim] = other.lower[dim];
            }
            if other.upper[dim] > self.upper[dim] {
                self.upper[dim] = other.upper[dim];
            }
        }
    }

    /// The union of two MBRs as a new value.
    pub fn union(&self, other: &Mbr) -> Mbr {
        let mut m = self.clone();
        m.expand_to_mbr(other);
        m
    }

    /// `true` iff the point lies inside the MBR (boundaries included).
    pub fn contains_point(&self, p: &Point) -> bool {
        debug_assert_eq!(self.dims(), p.dims());
        p.coords()
            .iter()
            .enumerate()
            .all(|(dim, &c)| c >= self.lower[dim] && c <= self.upper[dim])
    }

    /// `true` iff the MBR fully contains `other`.
    pub fn contains_mbr(&self, other: &Mbr) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        (0..self.dims()).all(|d| self.lower[d] <= other.lower[d] && self.upper[d] >= other.upper[d])
    }

    /// `true` iff the two MBRs overlap (boundaries included).
    pub fn intersects(&self, other: &Mbr) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        (0..self.dims()).all(|d| self.lower[d] <= other.upper[d] && other.lower[d] <= self.upper[d])
    }

    /// Hyper-volume of the MBR.
    pub fn area(&self) -> f64 {
        (0..self.dims())
            .map(|d| self.upper[d] - self.lower[d])
            .product()
    }

    /// Sum of the side lengths (the "margin" used by R*-style heuristics).
    pub fn margin(&self) -> f64 {
        (0..self.dims())
            .map(|d| self.upper[d] - self.lower[d])
            .sum()
    }

    /// Hyper-volume of the intersection with `other` (zero if disjoint).
    pub fn overlap_area(&self, other: &Mbr) -> f64 {
        let mut acc = 1.0;
        for d in 0..self.dims() {
            let lo = self.lower[d].max(other.lower[d]);
            let hi = self.upper[d].min(other.upper[d]);
            if hi <= lo {
                return 0.0;
            }
            acc *= hi - lo;
        }
        acc
    }

    /// Increase in area if the MBR were expanded to cover `other`.
    pub fn enlargement(&self, other: &Mbr) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Centre of the MBR.
    pub fn center(&self) -> Point {
        Point::from_slice(
            &(0..self.dims())
                .map(|d| (self.lower[d] + self.upper[d]) / 2.0)
                .collect::<Vec<_>>(),
        )
    }

    /// L1 distance from the best corner to the sky point; BBS de-heaps entries
    /// in ascending order of this value.
    pub fn l1_dist_to_sky(&self) -> f64 {
        self.top_corner().l1_dist_to_sky()
    }

    /// `true` iff every point inside the MBR is dominated by `p`
    /// (equivalently, `p` dominates the MBR's best corner). Such an entry can
    /// be pruned by BBS.
    pub fn dominated_by(&self, p: &Point) -> bool {
        p.dominates(&self.top_corner())
    }

    /// Upper bound of `f(o)` over every possible object `o` inside the MBR
    /// (the score of the best corner). BRS visits entries in descending order
    /// of this value.
    pub fn maxscore(&self, f: &LinearFunction) -> f64 {
        f.score_coords(&self.upper)
    }

    /// Lower bound of `f(o)` over every possible object `o` inside the MBR.
    pub fn minscore(&self, f: &LinearFunction) -> f64 {
        f.score_coords(&self.lower)
    }
}

impl std::fmt::Display for Mbr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} .. {}]", self.bottom_corner(), self.top_corner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(coords: &[f64]) -> Point {
        Point::from_slice(coords)
    }

    #[test]
    fn new_validates_inputs() {
        assert!(Mbr::new(vec![], vec![]).is_err());
        assert!(Mbr::new(vec![0.0], vec![0.1, 0.2]).is_err());
        assert!(Mbr::new(vec![0.5, 0.5], vec![0.4, 0.9]).is_err());
        assert!(Mbr::new(vec![0.0, f64::NAN], vec![1.0, 1.0]).is_err());
        assert!(Mbr::new(vec![0.0, 0.0], vec![1.0, 1.0]).is_ok());
    }

    #[test]
    fn from_point_is_degenerate() {
        let m = Mbr::from_point(&p(&[0.3, 0.7]));
        assert_eq!(m.lower(), &[0.3, 0.7]);
        assert_eq!(m.upper(), &[0.3, 0.7]);
        assert_eq!(m.area(), 0.0);
        assert!(m.contains_point(&p(&[0.3, 0.7])));
        assert!(!m.contains_point(&p(&[0.3, 0.8])));
    }

    #[test]
    fn covering_points_and_union() {
        let pts = [p(&[0.1, 0.9]), p(&[0.5, 0.2]), p(&[0.3, 0.4])];
        let m = Mbr::covering_points(pts.iter());
        assert_eq!(m.lower(), &[0.1, 0.2]);
        assert_eq!(m.upper(), &[0.5, 0.9]);
        for q in &pts {
            assert!(m.contains_point(q));
        }
        let other = Mbr::from_point(&p(&[0.9, 0.1]));
        let u = m.union(&other);
        assert!(u.contains_mbr(&m));
        assert!(u.contains_mbr(&other));
        assert_eq!(u.upper(), &[0.9, 0.9]);
    }

    #[test]
    fn intersection_and_overlap() {
        let a = Mbr::new(vec![0.0, 0.0], vec![0.5, 0.5]).unwrap();
        let b = Mbr::new(vec![0.4, 0.4], vec![0.8, 0.8]).unwrap();
        let c = Mbr::new(vec![0.6, 0.6], vec![0.9, 0.9]).unwrap();
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!((a.overlap_area(&b) - 0.01).abs() < 1e-12);
        assert_eq!(a.overlap_area(&c), 0.0);
        // touching boundaries: intersects but zero overlap area
        let d = Mbr::new(vec![0.5, 0.0], vec![0.7, 0.5]).unwrap();
        assert!(a.intersects(&d));
        assert_eq!(a.overlap_area(&d), 0.0);
    }

    #[test]
    fn area_margin_enlargement() {
        let a = Mbr::new(vec![0.0, 0.0], vec![0.5, 0.2]).unwrap();
        assert!((a.area() - 0.1).abs() < 1e-12);
        assert!((a.margin() - 0.7).abs() < 1e-12);
        let b = Mbr::new(vec![0.5, 0.2], vec![1.0, 0.4]).unwrap();
        let enl = a.enlargement(&b);
        assert!((enl - (0.4 - 0.1)).abs() < 1e-12);
    }

    #[test]
    fn dominance_pruning_predicate() {
        // Entry with best corner (0.6, 0.4) is pruned by a skyline point (0.7, 0.5)
        let m = Mbr::new(vec![0.1, 0.1], vec![0.6, 0.4]).unwrap();
        assert!(m.dominated_by(&p(&[0.7, 0.5])));
        assert!(!m.dominated_by(&p(&[0.7, 0.3])));
        // A point equal to the best corner does not dominate the MBR.
        assert!(!m.dominated_by(&p(&[0.6, 0.4])));
    }

    #[test]
    fn maxscore_bounds_all_contained_points() {
        let f = LinearFunction::new(vec![0.8, 0.2]).unwrap();
        let m = Mbr::new(vec![0.1, 0.2], vec![0.6, 0.9]).unwrap();
        let max = m.maxscore(&f);
        let min = m.minscore(&f);
        for &(x, y) in &[(0.1, 0.2), (0.6, 0.9), (0.3, 0.5), (0.6, 0.2)] {
            let s = f.score(&p(&[x, y]));
            assert!(s <= max + 1e-12);
            assert!(s >= min - 1e-12);
        }
    }

    #[test]
    fn center_and_sky_distance() {
        let m = Mbr::new(vec![0.2, 0.4], vec![0.6, 0.8]).unwrap();
        assert_eq!(m.center().coords(), &[0.4, 0.6000000000000001]);
        assert!((m.l1_dist_to_sky() - (0.4 + 0.2)).abs() < 1e-12);
    }

    #[test]
    fn display_is_compact() {
        let m = Mbr::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        assert!(m.to_string().starts_with('['));
    }

    proptest! {
        #[test]
        fn union_contains_both(
            a_lo in proptest::collection::vec(0.0f64..0.5, 3),
            b_lo in proptest::collection::vec(0.0f64..0.5, 3),
            a_ext in proptest::collection::vec(0.0f64..0.5, 3),
            b_ext in proptest::collection::vec(0.0f64..0.5, 3),
        ) {
            let a_hi: Vec<f64> = a_lo.iter().zip(&a_ext).map(|(l, e)| l + e).collect();
            let b_hi: Vec<f64> = b_lo.iter().zip(&b_ext).map(|(l, e)| l + e).collect();
            let a = Mbr::new(a_lo, a_hi).unwrap();
            let b = Mbr::new(b_lo, b_hi).unwrap();
            let u = a.union(&b);
            prop_assert!(u.contains_mbr(&a));
            prop_assert!(u.contains_mbr(&b));
            prop_assert!(u.area() + 1e-12 >= a.area().max(b.area()));
        }

        #[test]
        fn maxscore_dominates_contained_point_scores(
            lo in proptest::collection::vec(0.0f64..0.5, 3),
            ext in proptest::collection::vec(0.0f64..0.5, 3),
            t in proptest::collection::vec(0.0f64..=1.0, 3),
            w in proptest::collection::vec(0.01f64..1.0, 3),
        ) {
            let hi: Vec<f64> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
            let m = Mbr::new(lo.clone(), hi.clone()).unwrap();
            // interpolate a point inside the MBR
            let inside: Vec<f64> = lo.iter().zip(hi.iter()).zip(t.iter())
                .map(|((l, h), t)| l + (h - l) * t).collect();
            let f = LinearFunction::new(w).unwrap();
            let s = f.score(&Point::new(inside).unwrap());
            prop_assert!(s <= m.maxscore(&f) + 1e-9);
            prop_assert!(s >= m.minscore(&f) - 1e-9);
        }
    }
}
