//! Geometric primitives for the fair-assignment library.
//!
//! Everything in this crate operates on the *preference space* of the paper
//! "A Fair Assignment Algorithm for Multiple Preference Queries" (VLDB 2009):
//! objects are points with `D` feature values where **larger is better**, the
//! imaginary most preferable object (the *sky point*) is the corner of the
//! space with the largest value in every dimension, and user preferences are
//! monotone linear functions whose weights sum to one.
//!
//! The crate provides:
//!
//! * [`Point`] — a `D`-dimensional feature vector with dominance tests,
//! * [`Mbr`] — minimum bounding rectangles with the pruning predicates used by
//!   branch-and-bound skyline (BBS) and ranked search (BRS),
//! * [`LinearFunction`] — normalized (optionally prioritized) linear
//!   preference functions with `score` / `maxscore`,
//! * [`edr`] — exclusive dominance region helpers used by skyline maintenance,
//! * [`kernel`] — columnar (SoA) batch-scoring kernels with a bit-identical
//!   determinism contract ([`SoaBlock`], [`ScoreTable`]).
//!
//! All coordinates are assumed to lie in `[0, 1]`; the sky point is the
//! all-ones vector. Nothing enforces this range (real datasets are normalized
//! by the caller), but [`Point::SKY_COORD`] documents the convention.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod edr;
mod function;
pub mod kernel;
mod mbr;
mod point;

pub use function::{normalize_weights, normalize_weights_in_place, LinearFunction};
pub use kernel::{ScoreTable, SoaBlock};
pub use mbr::Mbr;
pub use point::{Dominance, Point};

/// Convenience result alias used by fallible constructors in this crate.
pub type GeomResult<T> = Result<T, GeomError>;

/// Errors produced by constructors and combinators in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum GeomError {
    /// Two operands had different dimensionalities.
    DimensionMismatch {
        /// Dimensionality of the left operand.
        left: usize,
        /// Dimensionality of the right operand.
        right: usize,
    },
    /// A point / weight vector with zero dimensions was supplied.
    EmptyDimensions,
    /// Weights could not be normalized (non-finite or non-positive sum).
    InvalidWeights(String),
    /// A coordinate was not a finite number.
    NonFiniteCoordinate {
        /// Index of the offending dimension.
        dim: usize,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for GeomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeomError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
            GeomError::EmptyDimensions => write!(f, "zero-dimensional input"),
            GeomError::InvalidWeights(msg) => write!(f, "invalid weights: {msg}"),
            GeomError::NonFiniteCoordinate { dim, value } => {
                write!(f, "non-finite coordinate {value} in dimension {dim}")
            }
        }
    }
}

impl std::error::Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = GeomError::DimensionMismatch { left: 2, right: 3 };
        assert!(e.to_string().contains("2"));
        assert!(e.to_string().contains("3"));
        let e = GeomError::NonFiniteCoordinate {
            dim: 1,
            value: f64::NAN,
        };
        assert!(e.to_string().contains("dimension 1"));
        let e = GeomError::EmptyDimensions;
        assert!(!e.to_string().is_empty());
        let e = GeomError::InvalidWeights("sum is zero".into());
        assert!(e.to_string().contains("sum is zero"));
    }
}
