//! Linear preference functions.

use crate::{GeomError, GeomResult, Mbr, Point};
use serde::{Deserialize, Serialize};

/// Normalizes a weight vector so the weights sum to one.
///
/// The paper requires every preference function to be normalized "in order not
/// to favor any user" (Section 3). Returns an error for empty vectors,
/// non-finite or negative weights, and all-zero vectors.
pub fn normalize_weights(weights: &[f64]) -> GeomResult<Vec<f64>> {
    let mut out = weights.to_vec();
    normalize_weights_in_place(&mut out)?;
    Ok(out)
}

/// Normalizes a weight vector in place so the weights sum to one.
///
/// The allocation-free variant of [`normalize_weights`] for hot loops
/// (workload generators, reverse-search query construction): the caller's
/// buffer is validated and rescaled without any intermediate vector. On error
/// the buffer is left untouched.
pub fn normalize_weights_in_place(weights: &mut [f64]) -> GeomResult<()> {
    if weights.is_empty() {
        return Err(GeomError::EmptyDimensions);
    }
    let mut sum = 0.0;
    for (dim, &w) in weights.iter().enumerate() {
        if !w.is_finite() {
            return Err(GeomError::NonFiniteCoordinate { dim, value: w });
        }
        if w < 0.0 {
            return Err(GeomError::InvalidWeights(format!(
                "negative weight {w} in dimension {dim}"
            )));
        }
        sum += w;
    }
    if sum <= 0.0 {
        return Err(GeomError::InvalidWeights("weights sum to zero".into()));
    }
    for w in weights.iter_mut() {
        *w /= sum;
    }
    Ok(())
}

/// A monotone linear preference function `f(o) = γ · Σ αᵢ·oᵢ`.
///
/// * The weights `αᵢ` are normalized so they sum to one (Equation 1).
/// * `γ` is the optional user priority of Section 6.2 (Equation 2); it
///   defaults to `1.0` for the standard problem.
///
/// Identity (which user issued the query) and capacity are properties of the
/// *assignment problem*, not of the scoring function, and live in the
/// `pref-assign` crate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearFunction {
    weights: Box<[f64]>,
    priority: f64,
}

impl LinearFunction {
    /// Creates a function from raw weights, normalizing them to sum to one.
    /// The caller's vector is normalized in place and reused — no extra
    /// allocation beyond the buffer the caller already built.
    pub fn new(mut weights: Vec<f64>) -> GeomResult<Self> {
        normalize_weights_in_place(&mut weights)?;
        Ok(Self {
            weights: weights.into_boxed_slice(),
            priority: 1.0,
        })
    }

    /// Creates a prioritized function (`γ ≥ 0`), normalizing the weights.
    pub fn with_priority(weights: Vec<f64>, priority: f64) -> GeomResult<Self> {
        if !priority.is_finite() || priority < 0.0 {
            return Err(GeomError::InvalidWeights(format!(
                "priority must be a non-negative finite number, got {priority}"
            )));
        }
        let mut f = Self::new(weights)?;
        f.priority = priority;
        Ok(f)
    }

    /// Creates a function from weights that are already normalized.
    ///
    /// Intended for generators that sample directly on the simplex; the sum is
    /// checked with a loose tolerance in debug builds only.
    pub fn from_normalized(weights: Vec<f64>) -> GeomResult<Self> {
        if weights.is_empty() {
            return Err(GeomError::EmptyDimensions);
        }
        debug_assert!(
            (weights.iter().sum::<f64>() - 1.0).abs() < 1e-6,
            "from_normalized called with weights that do not sum to 1"
        );
        Ok(Self {
            weights: weights.into_boxed_slice(),
            priority: 1.0,
        })
    }

    /// Number of dimensions the function scores.
    #[inline]
    pub fn dims(&self) -> usize {
        self.weights.len()
    }

    /// The normalized weights `αᵢ`.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Weight in dimension `dim`.
    #[inline]
    pub fn weight(&self, dim: usize) -> f64 {
        self.weights[dim]
    }

    /// The priority multiplier `γ`.
    #[inline]
    pub fn priority(&self) -> f64 {
        self.priority
    }

    /// Returns a copy with priority γ.
    pub fn prioritized(&self, priority: f64) -> GeomResult<Self> {
        if !priority.is_finite() || priority < 0.0 {
            return Err(GeomError::InvalidWeights(format!(
                "priority must be a non-negative finite number, got {priority}"
            )));
        }
        Ok(Self {
            weights: self.weights.clone(),
            priority,
        })
    }

    /// The *modified coefficients* `α′ᵢ = γ·αᵢ` used by the prioritized
    /// variant (Section 6.2). For `γ = 1` these equal the plain weights.
    pub fn effective_weights(&self) -> Vec<f64> {
        self.weights.iter().map(|w| w * self.priority).collect()
    }

    /// Scores a point: `γ · Σ αᵢ·oᵢ` (Equations 1 and 2).
    #[inline]
    pub fn score(&self, o: &Point) -> f64 {
        self.score_coords(o.coords())
    }

    /// Scores a raw coordinate slice. Routed through the canonical
    /// [`crate::kernel::dot`] kernel so scalar and batch scoring share one
    /// floating-point summation order (see the kernel module's determinism
    /// contract).
    #[inline]
    pub fn score_coords(&self, coords: &[f64]) -> f64 {
        debug_assert_eq!(coords.len(), self.weights.len(), "dimension mismatch");
        crate::kernel::dot(&self.weights, coords) * self.priority
    }

    /// Upper bound of the score over an MBR (score of its best corner).
    #[inline]
    pub fn maxscore(&self, mbr: &Mbr) -> f64 {
        self.score_coords(mbr.upper())
    }

    /// The weight vector interpreted as a point in *weight space*; the Chain
    /// adaptation indexes functions by an R-tree over these points.
    pub fn weights_as_point(&self) -> Point {
        Point::from_slice(&self.weights)
    }

    /// The effective (priority-scaled) weight vector as a point in weight
    /// space; used for the function skyline of the two-skyline variant.
    pub fn effective_weights_as_point(&self) -> Point {
        Point::from_slice(&self.effective_weights())
    }
}

impl std::fmt::Display for LinearFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if (self.priority - 1.0).abs() > f64::EPSILON {
            write!(f, "{}*(", self.priority)?;
        }
        for (i, w) in self.weights.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{w:.3}·x{i}")?;
        }
        if (self.priority - 1.0).abs() > f64::EPSILON {
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normalize_weights_validates() {
        assert!(normalize_weights(&[]).is_err());
        assert!(normalize_weights(&[0.0, 0.0]).is_err());
        assert!(normalize_weights(&[-0.1, 0.5]).is_err());
        assert!(normalize_weights(&[f64::NAN, 0.5]).is_err());
        let w = normalize_weights(&[2.0, 2.0, 4.0]).unwrap();
        assert_eq!(w, vec![0.25, 0.25, 0.5]);
    }

    #[test]
    fn normalize_in_place_matches_allocating_variant() {
        let raw = [2.0, 2.0, 4.0];
        let mut buf = raw.to_vec();
        normalize_weights_in_place(&mut buf).unwrap();
        assert_eq!(buf, normalize_weights(&raw).unwrap());
        // errors leave the buffer untouched
        let mut bad = vec![-1.0, 2.0];
        assert!(normalize_weights_in_place(&mut bad).is_err());
        assert_eq!(bad, vec![-1.0, 2.0]);
        let mut empty: Vec<f64> = vec![];
        assert!(normalize_weights_in_place(&mut empty).is_err());
    }

    #[test]
    fn paper_figure1_scores() {
        // f1 = 0.8X + 0.2Y, c = (0.8, 0.2): f1(c) = 0.68, the highest pair score.
        let f1 = LinearFunction::new(vec![0.8, 0.2]).unwrap();
        let f2 = LinearFunction::new(vec![0.2, 0.8]).unwrap();
        let f3 = LinearFunction::new(vec![0.5, 0.5]).unwrap();
        let a = Point::from_slice(&[0.5, 0.6]);
        let b = Point::from_slice(&[0.2, 0.7]);
        let c = Point::from_slice(&[0.8, 0.2]);
        let d = Point::from_slice(&[0.4, 0.4]);
        assert!((f1.score(&c) - 0.68).abs() < 1e-12);
        // and it is indeed the maximum over all pairs
        let best = [&f1, &f2, &f3]
            .iter()
            .flat_map(|f| {
                [&a, &b, &c, &d]
                    .iter()
                    .map(|o| f.score(o))
                    .collect::<Vec<_>>()
            })
            .fold(f64::MIN, f64::max);
        assert!((best - 0.68).abs() < 1e-12);
    }

    #[test]
    fn input_form_translation() {
        // Table 1: Salary marked 4/5, Standing marked 1/5  =>  0.8X + 0.2Y.
        let f = LinearFunction::new(vec![4.0, 1.0]).unwrap();
        assert_eq!(f.weights(), &[0.8, 0.2]);
    }

    #[test]
    fn priority_scales_scores() {
        // Figure 7(b): f1 has γ=3, f3 has γ=1 with equal base weights sums.
        let f1 = LinearFunction::with_priority(vec![0.8, 0.2], 3.0).unwrap();
        let f3 = LinearFunction::with_priority(vec![0.5, 0.5], 1.0).unwrap();
        let o = Point::from_slice(&[0.5, 0.6]);
        assert!(f1.score(&o) > f3.score(&o));
        assert_eq!(f1.effective_weights(), vec![0.8 * 3.0, 0.2 * 3.0]);
        assert!(LinearFunction::with_priority(vec![0.5, 0.5], -1.0).is_err());
        assert!(LinearFunction::with_priority(vec![0.5, 0.5], f64::NAN).is_err());
    }

    #[test]
    fn prioritized_copy_keeps_weights() {
        let f = LinearFunction::new(vec![0.3, 0.7]).unwrap();
        let g = f.prioritized(4.0).unwrap();
        assert_eq!(g.weights(), f.weights());
        assert_eq!(g.priority(), 4.0);
        assert!(f.prioritized(f64::INFINITY).is_err());
    }

    #[test]
    fn from_normalized_roundtrip() {
        let f = LinearFunction::from_normalized(vec![0.25, 0.75]).unwrap();
        assert_eq!(f.weights(), &[0.25, 0.75]);
        assert!(LinearFunction::from_normalized(vec![]).is_err());
    }

    #[test]
    fn weight_space_points() {
        let f = LinearFunction::with_priority(vec![0.25, 0.75], 2.0).unwrap();
        assert_eq!(f.weights_as_point().coords(), &[0.25, 0.75]);
        assert_eq!(f.effective_weights_as_point().coords(), &[0.5, 1.5]);
    }

    #[test]
    fn display_mentions_priority_only_when_set() {
        let f = LinearFunction::new(vec![0.5, 0.5]).unwrap();
        assert!(!f.to_string().contains('('));
        let g = f.prioritized(2.0).unwrap();
        assert!(g.to_string().starts_with("2*("));
    }

    #[test]
    fn monotonicity_on_dominating_points() {
        let f = LinearFunction::new(vec![0.6, 0.3, 0.1]).unwrap();
        let hi = Point::from_slice(&[0.9, 0.8, 0.7]);
        let lo = Point::from_slice(&[0.5, 0.8, 0.7]);
        assert!(hi.dominates(&lo));
        assert!(f.score(&hi) >= f.score(&lo));
    }

    proptest! {
        #[test]
        fn weights_always_sum_to_one(
            w in proptest::collection::vec(0.001f64..10.0, 2..7),
        ) {
            let f = LinearFunction::new(w).unwrap();
            let sum: f64 = f.weights().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }

        #[test]
        fn score_is_monotone(
            w in proptest::collection::vec(0.001f64..10.0, 3),
            a in proptest::collection::vec(0.0f64..1.0, 3),
            b in proptest::collection::vec(0.0f64..1.0, 3),
        ) {
            let f = LinearFunction::new(w).unwrap();
            let pa = Point::new(a).unwrap();
            let pb = Point::new(b).unwrap();
            if pa.dominates_or_equal(&pb) {
                prop_assert!(f.score(&pa) + 1e-12 >= f.score(&pb));
            }
        }

        #[test]
        fn score_is_bounded_by_unit_cube(
            w in proptest::collection::vec(0.001f64..10.0, 2..6),
            o in proptest::collection::vec(0.0f64..=1.0, 2..6),
        ) {
            prop_assume!(w.len() == o.len());
            let f = LinearFunction::new(w).unwrap();
            let s = f.score(&Point::new(o).unwrap());
            prop_assert!((0.0..=1.0 + 1e-9).contains(&s));
        }
    }
}
