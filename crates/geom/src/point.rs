//! `D`-dimensional points and dominance tests.

use crate::{GeomError, GeomResult};
use serde::{Deserialize, Serialize};

/// Result of a pairwise dominance comparison between two points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dominance {
    /// The left point dominates the right one.
    Dominates,
    /// The right point dominates the left one.
    DominatedBy,
    /// The points have identical coordinates.
    Equal,
    /// Neither point dominates the other.
    Incomparable,
}

/// A point in the `D`-dimensional preference space.
///
/// Coordinates follow the paper's convention that **larger values are
/// better** in every dimension; the sky point (most preferable imaginary
/// object) is the all-[`Point::SKY_COORD`] vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    coords: Box<[f64]>,
}

impl Point {
    /// Coordinate of the sky point in every dimension (data is normalized to
    /// `[0, 1]`).
    pub const SKY_COORD: f64 = 1.0;

    /// Creates a point from a coordinate vector.
    ///
    /// Returns an error if the vector is empty or contains non-finite values.
    pub fn new(coords: Vec<f64>) -> GeomResult<Self> {
        if coords.is_empty() {
            return Err(GeomError::EmptyDimensions);
        }
        for (dim, &value) in coords.iter().enumerate() {
            if !value.is_finite() {
                return Err(GeomError::NonFiniteCoordinate { dim, value });
            }
        }
        Ok(Self {
            coords: coords.into_boxed_slice(),
        })
    }

    /// Creates a point without validation. Intended for literals in tests and
    /// generators that already guarantee finite coordinates.
    ///
    /// # Panics
    /// Panics if `coords` is empty.
    pub fn from_slice(coords: &[f64]) -> Self {
        assert!(
            !coords.is_empty(),
            "points must have at least one dimension"
        );
        Self {
            coords: coords.to_vec().into_boxed_slice(),
        }
    }

    /// The sky point (all coordinates equal to [`Point::SKY_COORD`]).
    pub fn sky(dims: usize) -> Self {
        Self {
            coords: vec![Self::SKY_COORD; dims].into_boxed_slice(),
        }
    }

    /// The origin (all coordinates zero), i.e. the least preferable object.
    pub fn origin(dims: usize) -> Self {
        Self {
            coords: vec![0.0; dims].into_boxed_slice(),
        }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.coords.len()
    }

    /// Coordinate in dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim >= self.dims()`.
    #[inline]
    pub fn coord(&self, dim: usize) -> f64 {
        self.coords[dim]
    }

    /// All coordinates as a slice.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Pairwise dominance comparison (larger is better).
    ///
    /// `a` dominates `b` iff `a[i] >= b[i]` for every dimension and the points
    /// are not identical (Section 2.2 of the paper).
    pub fn compare(&self, other: &Self) -> Dominance {
        debug_assert_eq!(self.dims(), other.dims(), "dimension mismatch");
        let mut self_better = false;
        let mut other_better = false;
        for (a, b) in self.coords.iter().zip(other.coords.iter()) {
            if a > b {
                self_better = true;
            } else if b > a {
                other_better = true;
            }
            if self_better && other_better {
                return Dominance::Incomparable;
            }
        }
        match (self_better, other_better) {
            (true, false) => Dominance::Dominates,
            (false, true) => Dominance::DominatedBy,
            (false, false) => Dominance::Equal,
            (true, true) => Dominance::Incomparable,
        }
    }

    /// `true` iff `self` dominates `other`.
    #[inline]
    pub fn dominates(&self, other: &Self) -> bool {
        self.compare(other) == Dominance::Dominates
    }

    /// `true` iff `self` dominates `other` or the two points coincide.
    #[inline]
    pub fn dominates_or_equal(&self, other: &Self) -> bool {
        matches!(self.compare(other), Dominance::Dominates | Dominance::Equal)
    }

    /// L1 (Manhattan) distance from this point to the sky point. BBS visits
    /// entries in ascending order of this distance.
    pub fn l1_dist_to_sky(&self) -> f64 {
        self.coords
            .iter()
            .map(|&c| (Self::SKY_COORD - c).max(0.0))
            .sum()
    }

    /// Euclidean distance between two points (used by the spatial-assignment
    /// heritage of the Chain algorithm and by tests).
    pub fn euclidean_dist(&self, other: &Self) -> f64 {
        debug_assert_eq!(self.dims(), other.dims());
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Component-wise minimum of two points.
    pub fn component_min(&self, other: &Self) -> GeomResult<Self> {
        if self.dims() != other.dims() {
            return Err(GeomError::DimensionMismatch {
                left: self.dims(),
                right: other.dims(),
            });
        }
        Ok(Self {
            coords: self
                .coords
                .iter()
                .zip(other.coords.iter())
                .map(|(a, b)| a.min(*b))
                .collect(),
        })
    }

    /// Component-wise maximum of two points.
    pub fn component_max(&self, other: &Self) -> GeomResult<Self> {
        if self.dims() != other.dims() {
            return Err(GeomError::DimensionMismatch {
                left: self.dims(),
                right: other.dims(),
            });
        }
        Ok(Self {
            coords: self
                .coords
                .iter()
                .zip(other.coords.iter())
                .map(|(a, b)| a.max(*b))
                .collect(),
        })
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.4}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(coords: &[f64]) -> Point {
        Point::from_slice(coords)
    }

    #[test]
    fn new_rejects_empty_and_non_finite() {
        assert!(matches!(
            Point::new(vec![]),
            Err(GeomError::EmptyDimensions)
        ));
        assert!(matches!(
            Point::new(vec![0.2, f64::NAN]),
            Err(GeomError::NonFiniteCoordinate { dim: 1, .. })
        ));
        assert!(matches!(
            Point::new(vec![f64::INFINITY]),
            Err(GeomError::NonFiniteCoordinate { dim: 0, .. })
        ));
        assert!(Point::new(vec![0.1, 0.9]).is_ok());
    }

    #[test]
    fn sky_and_origin() {
        let s = Point::sky(3);
        let o = Point::origin(3);
        assert_eq!(s.coords(), &[1.0, 1.0, 1.0]);
        assert_eq!(o.coords(), &[0.0, 0.0, 0.0]);
        assert!(s.dominates(&o));
        assert!(!o.dominates(&s));
        assert_eq!(s.l1_dist_to_sky(), 0.0);
        assert_eq!(o.l1_dist_to_sky(), 3.0);
    }

    #[test]
    fn dominance_basic_cases() {
        // From Figure 1 of the paper: a=(0.5,0.6), d=(0.4,0.4) => a dominates d.
        let a = p(&[0.5, 0.6]);
        let d = p(&[0.4, 0.4]);
        assert_eq!(a.compare(&d), Dominance::Dominates);
        assert_eq!(d.compare(&a), Dominance::DominatedBy);
        // a=(0.5,0.6), c=(0.8,0.2) are incomparable.
        let c = p(&[0.8, 0.2]);
        assert_eq!(a.compare(&c), Dominance::Incomparable);
        assert_eq!(c.compare(&a), Dominance::Incomparable);
        // identical points
        assert_eq!(a.compare(&a.clone()), Dominance::Equal);
        assert!(!a.dominates(&a.clone()));
        assert!(a.dominates_or_equal(&a.clone()));
    }

    #[test]
    fn dominance_requires_strict_improvement_somewhere() {
        let a = p(&[0.5, 0.5]);
        let b = p(&[0.5, 0.5]);
        assert_eq!(a.compare(&b), Dominance::Equal);
        let c = p(&[0.5, 0.6]);
        assert!(c.dominates(&a));
        assert!(c.dominates_or_equal(&a));
    }

    #[test]
    fn component_min_max() {
        let a = p(&[0.1, 0.9, 0.4]);
        let b = p(&[0.3, 0.2, 0.4]);
        assert_eq!(a.component_min(&b).unwrap().coords(), &[0.1, 0.2, 0.4]);
        assert_eq!(a.component_max(&b).unwrap().coords(), &[0.3, 0.9, 0.4]);
        let c = p(&[0.5]);
        assert!(a.component_min(&c).is_err());
        assert!(a.component_max(&c).is_err());
    }

    #[test]
    fn euclidean_distance() {
        let a = p(&[0.0, 0.0]);
        let b = p(&[3.0, 4.0]);
        assert!((a.euclidean_dist(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.euclidean_dist(&a.clone()), 0.0);
    }

    #[test]
    fn display_formats_coordinates() {
        let a = p(&[0.25, 0.5]);
        assert_eq!(a.to_string(), "(0.2500, 0.5000)");
    }

    proptest! {
        #[test]
        fn dominance_is_antisymmetric(
            a in proptest::collection::vec(0.0f64..1.0, 2..6),
            b in proptest::collection::vec(0.0f64..1.0, 2..6),
        ) {
            prop_assume!(a.len() == b.len());
            let pa = Point::new(a).unwrap();
            let pb = Point::new(b).unwrap();
            let ab = pa.compare(&pb);
            let ba = pb.compare(&pa);
            match ab {
                Dominance::Dominates => prop_assert_eq!(ba, Dominance::DominatedBy),
                Dominance::DominatedBy => prop_assert_eq!(ba, Dominance::Dominates),
                Dominance::Equal => prop_assert_eq!(ba, Dominance::Equal),
                Dominance::Incomparable => prop_assert_eq!(ba, Dominance::Incomparable),
            }
        }

        #[test]
        fn dominance_is_transitive(
            coords in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 3), 3),
        ) {
            let a = Point::new(coords[0].clone()).unwrap();
            let b = Point::new(coords[1].clone()).unwrap();
            let c = Point::new(coords[2].clone()).unwrap();
            if a.dominates(&b) && b.dominates(&c) {
                prop_assert!(a.dominates(&c));
            }
        }

        #[test]
        fn sky_point_dominates_or_equals_everything(
            coords in proptest::collection::vec(0.0f64..=1.0, 1..6),
        ) {
            let point = Point::new(coords).unwrap();
            let sky = Point::sky(point.dims());
            prop_assert!(sky.dominates_or_equal(&point));
        }

        #[test]
        fn l1_dist_to_sky_is_monotone_in_dominance(
            a in proptest::collection::vec(0.0f64..1.0, 3),
            b in proptest::collection::vec(0.0f64..1.0, 3),
        ) {
            let pa = Point::new(a).unwrap();
            let pb = Point::new(b).unwrap();
            if pa.dominates(&pb) {
                prop_assert!(pa.l1_dist_to_sky() <= pb.l1_dist_to_sky());
            }
        }
    }
}
