//! Criterion micro-benchmarks for the building blocks of the SB algorithm and
//! the ablations called out in DESIGN.md §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pref_assign::{sb, BestPairStrategy, Problem, SbOptions};
use pref_bench::{build_problem, Params, Scale};
use pref_datagen::{anti_correlated_objects, uniform_weight_functions};
use pref_geom::Point;
use pref_rtree::{RTree, RTreeConfig};
use pref_skyline::{compute_skyline_bbs, skyline_bnl, skyline_sfs, update_skyline};
use pref_topk::{FunctionLists, ReverseTopOne};

fn bench_params() -> Params {
    Params {
        num_functions: 300,
        num_objects: 5_000,
        dims: 3,
        ..Params::defaults(Scale::Quick)
    }
}

/// STR bulk load versus one-by-one insertion (design choice #5).
fn rtree_build(c: &mut Criterion) {
    let points = anti_correlated_objects(5_000, 3, 11);
    let mut group = c.benchmark_group("rtree_build");
    group.sample_size(10);
    group.bench_function("str_bulk_load", |b| {
        b.iter(|| {
            RTree::bulk_load(RTreeConfig::for_dims(3), points.clone()).unwrap();
        })
    });
    group.bench_function("insert_one_by_one", |b| {
        b.iter(|| {
            let mut tree = RTree::with_dims(3);
            for (r, p) in &points {
                tree.insert(*r, p.clone()).unwrap();
            }
        })
    });
    group.finish();
}

/// Index-based BBS versus the memory-resident skyline algorithms.
fn skyline_algorithms(c: &mut Criterion) {
    let points = anti_correlated_objects(10_000, 4, 13);
    let mut group = c.benchmark_group("skyline");
    group.sample_size(10);
    group.bench_function("bbs_on_rtree", |b| {
        b.iter_batched(
            || RTree::bulk_load(RTreeConfig::for_dims(4), points.clone()).unwrap(),
            |mut tree| compute_skyline_bbs(&mut tree),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("bnl", |b| b.iter(|| skyline_bnl(&points)));
    group.bench_function("sfs", |b| b.iter(|| skyline_sfs(&points)));
    group.finish();
}

/// UpdateSkyline versus DeltaSky over a burst of deletions (design choice #1).
fn skyline_maintenance(c: &mut Criterion) {
    let points = anti_correlated_objects(8_000, 3, 17);
    let mut group = c.benchmark_group("skyline_maintenance");
    group.sample_size(10);
    group.bench_function("update_skyline_100_removals", |b| {
        b.iter_batched(
            || {
                let mut tree = RTree::bulk_load(RTreeConfig::for_dims(3), points.clone()).unwrap();
                let sky = compute_skyline_bbs(&mut tree);
                (tree, sky)
            },
            |(mut tree, mut sky)| {
                for _ in 0..100 {
                    let Some(&victim) = sky.records().iter().min() else {
                        break;
                    };
                    let obj = sky.remove(victim).unwrap();
                    update_skyline(&mut tree, &mut sky, vec![obj]);
                }
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Resumable TA with the tight threshold versus an exhaustive scan
/// (design choices #2 and #3).
fn reverse_top1(c: &mut Criterion) {
    let functions = uniform_weight_functions(5_000, 4, 19);
    let lists = FunctionLists::new(&functions);
    let object = Point::from_slice(&[0.9, 0.4, 0.7, 0.2]);
    let mut group = c.benchmark_group("reverse_top1");
    group.bench_function("resumable_ta", |b| {
        b.iter(|| {
            let mut search = ReverseTopOne::new(object.clone(), 125);
            search.best(&lists)
        })
    });
    group.bench_function("exhaustive_scan", |b| {
        b.iter(|| lists.best_by_scan(&object))
    });
    group.finish();
}

/// Full SB runs: optimized versus the single-pair and fresh-TA ablations
/// (design choice #4).
fn sb_variants(c: &mut Criterion) {
    let params = bench_params();
    let problem: Problem = build_problem(&params);
    let mut group = c.benchmark_group("sb_variants");
    group.sample_size(10);
    let variants = [
        ("optimized", SbOptions::default()),
        (
            "single_pair",
            SbOptions {
                multiple_pairs_per_loop: false,
                ..SbOptions::default()
            },
        ),
        (
            "fresh_ta",
            SbOptions {
                best_pair: BestPairStrategy::FreshTa,
                ..SbOptions::default()
            },
        ),
    ];
    for (name, opts) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, opts| {
            b.iter_batched(
                || problem.build_tree(None, 0.02),
                |mut tree| sb(&problem, &mut tree, opts),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// End-to-end comparison of the three competitors at quick scale — the
/// microbenchmark twin of Figure 9.
fn competitors(c: &mut Criterion) {
    use pref_bench::AlgorithmKind;
    let params = bench_params();
    let problem: Problem = build_problem(&params);
    let mut group = c.benchmark_group("competitors");
    group.sample_size(10);
    for algo in AlgorithmKind::standard_set() {
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.label()),
            &algo,
            |b, algo| {
                b.iter_batched(
                    || problem.build_tree(None, 0.02),
                    |mut tree| algo.run(&problem, &mut tree, 0.025),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    rtree_build,
    skyline_algorithms,
    skyline_maintenance,
    reverse_top1,
    sb_variants,
    competitors
);
criterion_main!(benches);
