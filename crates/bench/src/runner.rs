//! Workload construction and single-cell execution.

use crate::algorithms::AlgorithmKind;
use crate::params::Params;
use crate::report::Row;
use pref_assign::{ObjectRecord, PreferenceFunction, Problem};
use pref_datagen::{clustered_weight_functions, random_priorities, uniform_weight_functions};
use pref_rtree::RTree;

/// Generates the problem instance described by `params` (deterministic in the
/// seed).
pub fn build_problem(params: &Params) -> Problem {
    // the real-data stand-ins fix the dimensionality; `Params::describe`
    // reports the same effective value so figure output stays truthful
    let dims = params.effective_dims();
    let mut functions = match params.weight_clusters {
        Some(clusters) => clustered_weight_functions(
            params.num_functions,
            dims,
            clusters,
            0.05,
            params.seed ^ 0x00f1,
        ),
        None => uniform_weight_functions(params.num_functions, dims, params.seed ^ 0x00f1),
    };
    if params.max_priority > 1 {
        functions = random_priorities(&functions, params.max_priority, params.seed ^ 0x0b0b);
    }
    let objects = params
        .distribution
        .generate(params.num_objects, dims, params.seed ^ 0x0bad);

    let functions: Vec<PreferenceFunction> = functions
        .into_iter()
        .enumerate()
        .map(|(i, f)| PreferenceFunction::new(i, f).with_capacity(params.function_capacity))
        .collect();
    let objects: Vec<ObjectRecord> = objects
        .into_iter()
        .map(|(id, p)| ObjectRecord {
            id,
            point: p,
            capacity: params.object_capacity,
        })
        .collect();
    Problem::new(functions, objects).expect("generated workloads are valid")
}

/// Builds the object index for a problem according to the parameters.
/// Rejects invalid parameters ([`Params::validate`]) instead of silently
/// mis-sizing the LRU buffer.
pub fn build_index(problem: &Problem, params: &Params) -> Result<RTree, String> {
    params.validate()?;
    Ok(problem.build_tree(None, params.buffer_fraction))
}

/// Runs one algorithm on one workload and returns the measurement row.
///
/// `x` is the value of the swept parameter (used as the row's abscissa).
pub fn run_cell(experiment: &str, x: &str, params: &Params, algo: AlgorithmKind) -> Row {
    let problem = build_problem(params);
    let mut tree = build_index(&problem, params)
        .unwrap_or_else(|e| panic!("invalid workload parameters for {experiment}/{x}: {e}"));
    let result = algo.run(&problem, &mut tree, params.omega_fraction);
    Row {
        experiment: experiment.to_string(),
        series: algo.label().to_string(),
        x: x.to_string(),
        io: result.metrics.object_io.io_accesses(),
        aux_io: result.metrics.aux_io.io_accesses(),
        cpu_s: result.metrics.cpu_seconds(),
        mem_mib: result.metrics.peak_memory_mib(),
        pairs: result.assignment.len(),
        loops: result.metrics.loops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Scale;
    use pref_datagen::ObjectDistribution;

    fn tiny_params() -> Params {
        Params {
            num_functions: 30,
            num_objects: 200,
            dims: 3,
            ..Params::defaults(Scale::Quick)
        }
    }

    #[test]
    fn build_problem_respects_params() {
        let mut params = tiny_params();
        params.function_capacity = 3;
        params.object_capacity = 2;
        params.max_priority = 4;
        let p = build_problem(&params);
        assert_eq!(p.num_functions(), 30);
        assert_eq!(p.num_objects(), 200);
        assert_eq!(p.dims(), 3);
        assert!(p.functions().iter().all(|f| f.capacity == 3));
        assert!(p.objects().iter().all(|o| o.capacity == 2));
        assert!(p.has_priorities());
    }

    #[test]
    fn real_like_distributions_force_five_dims() {
        let mut params = tiny_params();
        params.distribution = ObjectDistribution::NbaLike;
        params.dims = 3; // ignored
        let p = build_problem(&params);
        assert_eq!(p.dims(), 5);
    }

    #[test]
    fn run_cell_produces_consistent_rows() {
        let params = tiny_params();
        let row_sb = run_cell("test", "x1", &params, AlgorithmKind::Sb);
        let row_bf = run_cell("test", "x1", &params, AlgorithmKind::BruteForce);
        assert_eq!(row_sb.pairs, row_bf.pairs);
        assert_eq!(row_sb.pairs, 30);
        assert_eq!(row_sb.experiment, "test");
        assert_eq!(row_sb.series, "SB");
        assert!(row_bf.io >= row_sb.io);
        assert!(row_sb.cpu_s >= 0.0);
    }

    #[test]
    fn build_index_rejects_invalid_buffer_fractions() {
        let mut params = tiny_params();
        let problem = build_problem(&params);
        assert!(build_index(&problem, &params).is_ok());
        params.buffer_fraction = -0.5;
        let err = build_index(&problem, &params).unwrap_err();
        assert!(err.contains("buffer_fraction"), "unhelpful error: {err}");
        params.buffer_fraction = 1.5;
        assert!(build_index(&problem, &params).is_err());
        params.buffer_fraction = f64::NAN;
        assert!(build_index(&problem, &params).is_err());
    }

    #[test]
    fn clustered_weights_are_wired_through() {
        let mut params = tiny_params();
        params.weight_clusters = Some(1);
        let p = build_problem(&params);
        // with one tight cluster all weight vectors are nearly identical
        let w0 = p.functions()[0].function.weights()[0];
        let spread = p
            .functions()
            .iter()
            .map(|f| (f.function.weights()[0] - w0).abs())
            .fold(0.0f64, f64::max);
        assert!(spread < 0.5);
    }
}
