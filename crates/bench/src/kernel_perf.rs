//! Scalar-vs-columnar scoring microbench, shared by the `kernel_bench`
//! binary (the CI smoke gate) and the kernel cells of `solver_bench`.
//!
//! Each cell scores the same `|F| × n` workload twice:
//!
//! * **scalar** — the pre-kernel AoS path: one [`ScoreTable::score`] call per
//!   `(function, point)` pair, each chasing a boxed per-point coordinate
//!   slice;
//! * **kernel** — the columnar path: one [`ScoreTable::score_block`] call per
//!   function over a [`SoaBlock`] of contiguous `f64` lanes.
//!
//! Besides throughput, every cell re-checks the two contracts the kernels
//! ship with: the block scores must equal the scalar scores **bit for bit**
//! (the determinism contract of `pref_geom::kernel`), and the steady-state
//! scoring loop must not allocate — verified without an instrumented global
//! allocator (the workspace forbids `unsafe`) by pinning the scratch
//! buffer's pointer/capacity and the block lanes' pointers across the whole
//! timed run: any reallocation would move at least one of them.

use pref_datagen::ObjectDistribution;
use pref_geom::{Point, ScoreTable, SoaBlock};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// One scalar-vs-kernel measurement cell.
#[derive(Debug, Clone, Serialize)]
pub struct KernelCell {
    /// Dimensionality of the scored points (1..=8 hit the specialized
    /// kernels; larger hits the generic chunked fallback).
    pub dims: usize,
    /// Weight rows scored.
    pub num_functions: usize,
    /// Points per block.
    pub num_points: usize,
    /// Scalar AoS path, millions of scored elements per second (best of
    /// repeats).
    pub scalar_melems_per_s: f64,
    /// Columnar block-kernel path, millions of scored elements per second
    /// (best of repeats).
    pub kernel_melems_per_s: f64,
    /// `kernel_melems_per_s / scalar_melems_per_s`.
    pub speedup: f64,
    /// Every block score equalled the scalar score bit for bit.
    pub bit_identical: bool,
    /// Scratch pointer/capacity and lane pointers never moved across the
    /// timed run — the steady-state loop allocated nothing.
    pub zero_alloc: bool,
}

/// The dimensionalities a full sweep measures: every specialized kernel
/// (1..=8) plus one generic-fallback cell.
pub const KERNEL_DIMS: [usize; 9] = [1, 2, 3, 4, 5, 6, 7, 8, 12];

/// Runs one scalar-vs-kernel cell. Deterministic for a given `seed`; wall
/// times are best-of-`repeats`.
pub fn run_kernel_cell(
    dims: usize,
    num_functions: usize,
    num_points: usize,
    repeats: usize,
    seed: u64,
) -> KernelCell {
    let functions = pref_datagen::uniform_weight_functions(num_functions, dims, seed);
    let table = ScoreTable::from_functions(&functions);
    let points: Vec<Point> = ObjectDistribution::Independent
        .generate(num_points, dims, seed ^ 0x0bad)
        .into_iter()
        .map(|(_, p)| p)
        .collect();

    let mut block = SoaBlock::new();
    for p in &points {
        block.push_point(p);
    }
    let mut scalar_out = vec![0.0f64; num_points];
    let mut kernel_out: Vec<f64> = Vec::new();

    // warm-up sizes the scratch; from here on the loop must not allocate
    table.score_block(0, &block, &mut kernel_out);
    let scratch_ptr = kernel_out.as_ptr();
    let scratch_cap = kernel_out.capacity();
    let lane_ptrs: Vec<*const f64> = (0..block.dims()).map(|d| block.lane(d).as_ptr()).collect();

    // bit-identity: every (function, point) score, both paths
    let mut bit_identical = true;
    for fi in 0..table.len() {
        table.score_block(fi, &block, &mut kernel_out);
        for (i, p) in points.iter().enumerate() {
            if kernel_out[i].to_bits() != table.score(fi, p).to_bits() {
                bit_identical = false;
            }
        }
    }

    let mut scalar_best = f64::INFINITY;
    let mut kernel_best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let started = Instant::now();
        for fi in 0..table.len() {
            for (i, p) in points.iter().enumerate() {
                scalar_out[i] = table.score(fi, p);
            }
            black_box(scalar_out.as_slice());
        }
        scalar_best = scalar_best.min(started.elapsed().as_secs_f64());

        let started = Instant::now();
        for fi in 0..table.len() {
            table.score_block(fi, &block, &mut kernel_out);
            black_box(kernel_out.as_slice());
        }
        kernel_best = kernel_best.min(started.elapsed().as_secs_f64());

        // steady-state refill keeps lane capacity too
        block.clear();
        for p in &points {
            block.push_point(p);
        }
    }

    let zero_alloc = kernel_out.as_ptr() == scratch_ptr
        && kernel_out.capacity() == scratch_cap
        && (0..block.dims()).all(|d| block.lane(d).as_ptr() == lane_ptrs[d]);

    let elems = (table.len() * num_points) as f64;
    let scalar_melems_per_s = elems / scalar_best / 1e6;
    let kernel_melems_per_s = elems / kernel_best / 1e6;
    KernelCell {
        dims,
        num_functions,
        num_points,
        scalar_melems_per_s,
        kernel_melems_per_s,
        speedup: kernel_melems_per_s / scalar_melems_per_s,
        bit_identical,
        zero_alloc,
    }
}

/// Runs the full dimensionality sweep ([`KERNEL_DIMS`]).
pub fn run_kernel_cells(
    num_functions: usize,
    num_points: usize,
    repeats: usize,
    seed: u64,
) -> Vec<KernelCell> {
    KERNEL_DIMS
        .iter()
        .map(|&dims| run_kernel_cell(dims, num_functions, num_points, repeats, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_bit_identical_and_allocation_free() {
        for dims in [1usize, 3, 8, 12] {
            let cell = run_kernel_cell(dims, 8, 96, 1, 7);
            assert!(cell.bit_identical, "dims {dims}");
            assert!(cell.zero_alloc, "dims {dims}");
            assert!(cell.kernel_melems_per_s > 0.0 && cell.scalar_melems_per_s > 0.0);
        }
    }
}
