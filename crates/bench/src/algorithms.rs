//! The competitor algorithms measured by the experiments.

use pref_assign::{
    AssignmentResult, BruteForceSolver, ChainSolver, Problem, SbAltSolver, SbOptions, SbSolver,
    Solver,
};
use pref_rtree::RTree;

/// The algorithms compared in the paper's evaluation, plus the SB ablation
/// variants of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// Brute Force (Section 4.1): one resumable top-1 search per function.
    BruteForce,
    /// Chain: the adaptation of the spatial ECP algorithm.
    Chain,
    /// SB, fully optimized (UpdateSkyline + resumable TA + multi-pair).
    Sb,
    /// SB with UpdateSkyline but without the CPU optimizations (Figure 8).
    SbUpdateSkyline,
    /// SB with DeltaSky-style maintenance (Figure 8).
    SbDeltaSky,
    /// SB restricted to one pair per loop (ablation of Section 5.3).
    SbSinglePair,
    /// The two-skyline SB variant for prioritized functions (Section 6.2).
    SbTwoSkylines,
    /// SB-alt: batch best-pair search over disk-resident function lists
    /// (Section 7.6).
    SbAlt {
        /// LRU buffer (in 4 KiB blocks) in front of the coefficient lists.
        list_buffer_frames: usize,
    },
}

impl AlgorithmKind {
    /// Label used in the report tables (matching the paper's series names).
    pub fn label(&self) -> &'static str {
        match self {
            AlgorithmKind::BruteForce => "Brute Force",
            AlgorithmKind::Chain => "Chain",
            AlgorithmKind::Sb => "SB",
            AlgorithmKind::SbUpdateSkyline => "SB-UpdateSkyline",
            AlgorithmKind::SbDeltaSky => "SB-DeltaSky",
            AlgorithmKind::SbSinglePair => "SB-SinglePair",
            AlgorithmKind::SbTwoSkylines => "SB-TwoSkylines",
            AlgorithmKind::SbAlt { .. } => "SB-alt",
        }
    }

    /// The standard competitor set of Section 7.2 (Figures 9–14, 16).
    pub fn standard_set() -> Vec<AlgorithmKind> {
        vec![
            AlgorithmKind::BruteForce,
            AlgorithmKind::Chain,
            AlgorithmKind::Sb,
        ]
    }

    /// The ablation set of Figure 8.
    pub fn ablation_set() -> Vec<AlgorithmKind> {
        vec![
            AlgorithmKind::SbDeltaSky,
            AlgorithmKind::SbUpdateSkyline,
            AlgorithmKind::Sb,
        ]
    }

    /// Materializes the [`Solver`] this kind stands for. `omega_fraction`
    /// parameterizes the fully optimized SB variant (ignored by the others).
    pub fn solver(&self, omega_fraction: f64) -> Box<dyn Solver> {
        match self {
            AlgorithmKind::BruteForce => Box::new(BruteForceSolver),
            AlgorithmKind::Chain => Box::new(ChainSolver),
            AlgorithmKind::Sb => Box::new(SbSolver::with_omega(omega_fraction)),
            AlgorithmKind::SbUpdateSkyline => Box::new(SbSolver {
                options: SbOptions::update_skyline_only(),
            }),
            AlgorithmKind::SbDeltaSky => Box::new(SbSolver {
                options: SbOptions::delta_sky(),
            }),
            AlgorithmKind::SbSinglePair => Box::new(SbSolver {
                options: SbOptions {
                    multiple_pairs_per_loop: false,
                    ..SbOptions::default()
                },
            }),
            AlgorithmKind::SbTwoSkylines => Box::new(SbSolver {
                options: SbOptions::two_skylines(),
            }),
            AlgorithmKind::SbAlt { list_buffer_frames } => Box::new(SbAltSolver {
                list_buffer_frames: *list_buffer_frames,
            }),
        }
    }

    /// Runs the algorithm on a problem and its object R-tree (dispatches
    /// through the [`Solver`] trait).
    pub fn run(
        &self,
        problem: &Problem,
        tree: &mut RTree,
        omega_fraction: f64,
    ) -> AssignmentResult {
        self.solver(omega_fraction).solve(problem, tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pref_datagen::{independent_objects, uniform_weight_functions};

    #[test]
    fn labels_are_distinct() {
        let all = [
            AlgorithmKind::BruteForce,
            AlgorithmKind::Chain,
            AlgorithmKind::Sb,
            AlgorithmKind::SbUpdateSkyline,
            AlgorithmKind::SbDeltaSky,
            AlgorithmKind::SbSinglePair,
            AlgorithmKind::SbTwoSkylines,
            AlgorithmKind::SbAlt {
                list_buffer_frames: 4,
            },
        ];
        let mut labels: Vec<&str> = all.iter().map(AlgorithmKind::label).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn solver_dispatch_equals_run() {
        let functions = uniform_weight_functions(20, 3, 5);
        let objects = independent_objects(100, 3, 6);
        let problem = Problem::from_parts(functions, objects).unwrap();
        for algo in [
            AlgorithmKind::Sb,
            AlgorithmKind::SbAlt {
                list_buffer_frames: 4,
            },
            AlgorithmKind::Chain,
            AlgorithmKind::BruteForce,
        ] {
            let mut tree_a = problem.build_tree(Some(8), 0.02);
            let mut tree_b = problem.build_tree(Some(8), 0.02);
            let via_run = algo.run(&problem, &mut tree_a, 0.025);
            let via_solver = algo.solver(0.025).solve(&problem, &mut tree_b);
            assert_eq!(
                via_run.assignment.canonical(),
                via_solver.assignment.canonical()
            );
        }
    }

    #[test]
    fn every_algorithm_produces_the_same_matching() {
        let functions = uniform_weight_functions(40, 3, 1);
        let objects = independent_objects(200, 3, 2);
        let problem = Problem::from_parts(functions, objects).unwrap();
        let reference = {
            let mut tree = problem.build_tree(Some(8), 0.02);
            AlgorithmKind::Sb
                .run(&problem, &mut tree, 0.025)
                .assignment
                .canonical()
        };
        for algo in [
            AlgorithmKind::BruteForce,
            AlgorithmKind::Chain,
            AlgorithmKind::SbUpdateSkyline,
            AlgorithmKind::SbDeltaSky,
            AlgorithmKind::SbSinglePair,
            AlgorithmKind::SbAlt {
                list_buffer_frames: 4,
            },
        ] {
            let mut tree = problem.build_tree(Some(8), 0.02);
            let result = algo.run(&problem, &mut tree, 0.025);
            assert_eq!(result.assignment.canonical(), reference, "{}", algo.label());
        }
    }
}
