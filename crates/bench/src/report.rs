//! Measurement rows, aligned text tables and JSON output.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::io::Write;
use std::path::Path;

/// One measurement: one algorithm on one workload configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Experiment identifier (e.g. `"fig09-io-anti"`).
    pub experiment: String,
    /// Series name (the algorithm label).
    pub series: String,
    /// Abscissa value of the sweep (e.g. `"D=4"`).
    pub x: String,
    /// I/O accesses on the object R-tree.
    pub io: u64,
    /// I/O accesses on auxiliary structures: SB's TA sorted-list accesses,
    /// SB-alt's disk-resident function lists, Chain's function R-tree.
    pub aux_io: u64,
    /// CPU time in seconds.
    pub cpu_s: f64,
    /// Peak search-structure memory in MiB.
    pub mem_mib: f64,
    /// Number of assigned pairs.
    pub pairs: usize,
    /// Number of algorithm loops.
    pub loops: u64,
}

impl Row {
    /// Total I/O (object tree + auxiliary structures).
    pub fn total_io(&self) -> u64 {
        self.io + self.aux_io
    }
}

/// A collection of measurement rows belonging to one figure.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Report {
    /// Human-readable title (e.g. `"Figure 9: effect of dimensionality"`).
    pub title: String,
    /// Workload description shared by all rows.
    pub setup: String,
    /// The measurements.
    pub rows: Vec<Row>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>, setup: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            setup: setup.into(),
            rows: Vec::new(),
        }
    }

    /// Adds a measurement row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// All distinct series names, in first-appearance order.
    pub fn series(&self) -> Vec<String> {
        let mut out = Vec::new();
        for r in &self.rows {
            if !out.contains(&r.series) {
                out.push(r.series.clone());
            }
        }
        out
    }

    /// All distinct abscissa values, in first-appearance order.
    pub fn xs(&self) -> Vec<String> {
        let mut out = Vec::new();
        for r in &self.rows {
            if !out.contains(&r.x) {
                out.push(r.x.clone());
            }
        }
        out
    }

    /// Looks up a row by experiment / series / x.
    pub fn get(&self, experiment: &str, series: &str, x: &str) -> Option<&Row> {
        self.rows
            .iter()
            .find(|r| r.experiment == experiment && r.series == series && r.x == x)
    }

    /// Renders the report as aligned text tables — one per experiment id and
    /// metric (I/O, CPU, memory) — in the spirit of the paper's charts.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format!("setup: {}\n", self.setup));
        let experiments: BTreeSet<String> =
            self.rows.iter().map(|r| r.experiment.clone()).collect();
        for experiment in experiments {
            let rows: Vec<&Row> = self
                .rows
                .iter()
                .filter(|r| r.experiment == experiment)
                .collect();
            let series: Vec<String> = {
                let mut s = Vec::new();
                for r in &rows {
                    if !s.contains(&r.series) {
                        s.push(r.series.clone());
                    }
                }
                s
            };
            let xs: Vec<String> = {
                let mut s = Vec::new();
                for r in &rows {
                    if !s.contains(&r.x) {
                        s.push(r.x.clone());
                    }
                }
                s
            };
            for (metric, fmt) in [
                ("I/O accesses", 0usize),
                ("CPU time (s)", 1),
                ("memory (MiB)", 2),
            ] {
                out.push_str(&format!("\n-- {experiment}: {metric} --\n"));
                out.push_str(&format!("{:<22}", "series \\ x"));
                for x in &xs {
                    out.push_str(&format!("{x:>14}"));
                }
                out.push('\n');
                for s in &series {
                    out.push_str(&format!("{s:<22}"));
                    for x in &xs {
                        let cell = rows
                            .iter()
                            .find(|r| &r.series == s && &r.x == x)
                            .map(|r| match fmt {
                                0 => format!("{}", r.total_io()),
                                1 => format!("{:.3}", r.cpu_s),
                                _ => format!("{:.2}", r.mem_mib),
                            })
                            .unwrap_or_else(|| "-".to_string());
                        out.push_str(&format!("{cell:>14}"));
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Prints the text tables to stdout.
    pub fn print(&self) {
        print!("{}", self.to_text());
    }

    /// Writes the report as JSON into `dir/<name>.json`, creating the
    /// directory if needed. Returns the path written.
    pub fn write_json(&self, dir: &Path, name: &str) -> std::io::Result<std::path::PathBuf> {
        // lint: allow(no-raw-fs) -- bench report output, not durable state
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.json"));
        // lint: allow(no-raw-fs) -- bench report output, not durable state
        let mut file = std::fs::File::create(&path)?;
        let json = serde_json::to_string_pretty(self).expect("report serializes");
        file.write_all(json.as_bytes())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(exp: &str, series: &str, x: &str, io: u64) -> Row {
        Row {
            experiment: exp.into(),
            series: series.into(),
            x: x.into(),
            io,
            aux_io: 0,
            cpu_s: 0.5,
            mem_mib: 1.25,
            pairs: 10,
            loops: 3,
        }
    }

    #[test]
    fn table_contains_every_cell() {
        let mut report = Report::new("Figure X", "test setup");
        report.push(row("io", "SB", "D=3", 100));
        report.push(row("io", "SB", "D=4", 200));
        report.push(row("io", "Chain", "D=3", 10_000));
        let text = report.to_text();
        assert!(text.contains("Figure X"));
        assert!(text.contains("SB"));
        assert!(text.contains("Chain"));
        assert!(text.contains("10000"));
        assert!(text.contains("D=4"));
        // missing cell renders as '-'
        assert!(text.contains('-'));
        assert_eq!(report.series(), vec!["SB".to_string(), "Chain".to_string()]);
        assert_eq!(report.xs(), vec!["D=3".to_string(), "D=4".to_string()]);
    }

    #[test]
    fn json_round_trip() {
        let mut report = Report::new("Figure Y", "setup");
        report.push(row("io", "SB", "1", 42));
        let dir = std::env::temp_dir().join("pref-bench-test");
        let path = report.write_json(&dir, "fig_y").unwrap();
        let loaded: Report =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(loaded.rows.len(), 1);
        assert_eq!(loaded.rows[0].io, 42);
        assert_eq!(loaded.title, "Figure Y");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn total_io_adds_aux() {
        let mut r = row("io", "SB-alt", "1", 10);
        r.aux_io = 5;
        assert_eq!(r.total_io(), 15);
    }
}
