//! solver_bench — the repo's reproducible solver perf harness.
//!
//! Runs the paper's default workload shapes (independent / correlated /
//! anti-correlated object distributions at several `|F|`/`|O|` scales) through
//! the dense-ID SB solver, the pre-refactor hash-map SB baseline, the
//! DeltaSky ablation and Brute Force, verifies every canonical output against
//! the exact oracle, and writes a machine-readable `BENCH_solver.json`
//! (wall time, loops, searches, object + auxiliary I/O, peak memory) that
//! seeds the repo's perf trajectory.
//!
//! Two further cell families track the columnar/parallel scoring layer:
//!
//! * **kernel cells** — the scalar-vs-columnar scoring microbench of
//!   `pref_bench::kernel_perf`, one cell per dimensionality; gated on
//!   bit-identity, zero steady-state allocation, and a ≥ 2× single-thread
//!   speedup of the columnar path (geometric mean over the sweep);
//! * **parallel cells** — the full SB solve at 1/2/4/8 worker threads on the
//!   largest anti-correlated workload; gated on canonical identity at every
//!   thread count, and on a ≥ 3× speedup at 8 threads *only when the machine
//!   actually has ≥ 8 hardware threads* (the report records
//!   `hardware_threads` so the collapse is auditable).
//!
//! Usage: `solver_bench [--smoke] [--out <path>] [--repeats <n>]`
//!
//! The process exits non-zero if any solver's canonical matching diverges
//! from the oracle — CI runs `--smoke` as a correctness gate and uploads the
//! JSON as an artifact.

#![forbid(unsafe_code)]

use pref_assign::{oracle, sb, AssignmentResult, Problem, SbOptions};
use pref_bench::kernel_perf::{run_kernel_cells, KernelCell};
use pref_bench::sb_hash_baseline;
use pref_datagen::ObjectDistribution;
use pref_rtree::RTree;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// One workload configuration.
struct Cell {
    distribution: ObjectDistribution,
    num_functions: usize,
    num_objects: usize,
}

/// One measurement row of the emitted JSON.
#[derive(Debug, Clone, Serialize)]
struct BenchRow {
    workload: String,
    num_functions: usize,
    num_objects: usize,
    algorithm: String,
    /// Best-of-`repeats` wall time, in seconds.
    wall_s: f64,
    loops: u64,
    searches: u64,
    object_io: u64,
    aux_io: u64,
    peak_memory_bytes: u64,
    pairs: usize,
    matches_oracle: bool,
}

/// One multi-threaded batch-solve measurement.
#[derive(Debug, Clone, Serialize)]
struct ParallelRow {
    workload: String,
    num_functions: usize,
    num_objects: usize,
    threads: usize,
    /// Best-of-`repeats` wall time, in seconds.
    wall_s: f64,
    /// `wall_s(threads=1) / wall_s` — parallel efficiency of the
    /// reciprocal-pair scoring phase.
    speedup_vs_1: f64,
    /// Canonical matching equals the single-threaded one byte for byte.
    canonical_identical: bool,
}

#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    bench: String,
    scale: String,
    repeats: usize,
    created_unix_s: u64,
    /// Hardware threads of the bench machine; the 8-thread speedup gate only
    /// arms when this is ≥ 8.
    hardware_threads: usize,
    rows: Vec<BenchRow>,
    kernel: Vec<KernelCell>,
    parallel: Vec<ParallelRow>,
}

const DIMS: usize = 3;
const SEED: u64 = 20_090_824; // the paper's VLDB publication date

fn main() {
    let mut smoke = false;
    let mut out = PathBuf::from("BENCH_solver.json");
    let mut repeats: usize = 5;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(path) => out = PathBuf::from(path),
                None => {
                    eprintln!("--out requires a path; try --help");
                    std::process::exit(2);
                }
            },
            "--repeats" => match args.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => repeats = n,
                _ => {
                    eprintln!("--repeats requires a positive integer; try --help");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: solver_bench [--smoke] [--out <path>] [--repeats <n>]");
                return;
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                std::process::exit(2);
            }
        }
    }

    let distributions = [
        ObjectDistribution::Independent,
        ObjectDistribution::Correlated,
        ObjectDistribution::AntiCorrelated,
    ];
    // The 2k-object scale is the reference point of the perf trajectory and is
    // present at every bench scale; the larger cells only run off-CI.
    let scales: &[(usize, usize)] = if smoke {
        &[(50, 500), (100, 2_000)]
    } else {
        &[(50, 500), (100, 2_000), (200, 5_000)]
    };
    let cells: Vec<Cell> = distributions
        .iter()
        .flat_map(|&distribution| {
            scales
                .iter()
                .map(move |&(num_functions, num_objects)| Cell {
                    distribution,
                    num_functions,
                    num_objects,
                })
        })
        .collect();

    let mut rows: Vec<BenchRow> = Vec::new();
    let mut diverged = false;

    for cell in &cells {
        let problem = build_problem(cell);
        let want = oracle(&problem).canonical();
        let workload = cell.distribution.label().to_string();
        eprintln!(
            "== {} |F|={} |O|={} ==",
            workload, cell.num_functions, cell.num_objects
        );

        type Runner<'a> = Box<dyn Fn(&Problem, &mut RTree) -> AssignmentResult + 'a>;
        let algorithms: Vec<(&str, Runner)> = vec![
            (
                "SB-dense",
                Box::new(|p: &Problem, t: &mut RTree| sb(p, t, &SbOptions::default())),
            ),
            (
                "SB-hash-baseline",
                Box::new(|p: &Problem, t: &mut RTree| sb_hash_baseline(p, t, 0.025)),
            ),
            (
                "SB-DeltaSky",
                Box::new(|p: &Problem, t: &mut RTree| sb(p, t, &SbOptions::delta_sky())),
            ),
            (
                "Brute Force",
                Box::new(|p: &Problem, t: &mut RTree| pref_assign::brute_force(p, t)),
            ),
        ];

        for (name, run) in &algorithms {
            let mut best_wall = f64::INFINITY;
            let mut last: Option<AssignmentResult> = None;
            for _ in 0..repeats {
                let mut tree = problem.build_tree(None, 0.02);
                let started = Instant::now();
                let result = run(&problem, &mut tree);
                best_wall = best_wall.min(started.elapsed().as_secs_f64());
                last = Some(result);
            }
            let result = last.expect("repeats >= 1");
            let matches = result.assignment.canonical() == want;
            if !matches {
                diverged = true;
                eprintln!("!! {name} diverges from the oracle on {workload}");
            }
            eprintln!("  {name:<18} wall={best_wall:.4}s {}", result.metrics);
            rows.push(BenchRow {
                workload: workload.clone(),
                num_functions: cell.num_functions,
                num_objects: cell.num_objects,
                algorithm: name.to_string(),
                wall_s: best_wall,
                loops: result.metrics.loops,
                searches: result.metrics.searches,
                object_io: result.metrics.object_io.io_accesses(),
                aux_io: result.metrics.aux_io.io_accesses(),
                peak_memory_bytes: result.metrics.peak_memory_bytes,
                pairs: result.assignment.len(),
                matches_oracle: matches,
            });
        }
    }

    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // --- kernel cells: scalar vs. columnar scoring throughput ---------------
    let (kf, kn) = if smoke { (32, 4_096) } else { (64, 16_384) };
    let kernel = run_kernel_cells(kf, kn, repeats, SEED);
    for cell in &kernel {
        eprintln!(
            "== kernel D={:<2}: scalar {:>7.1} Melem/s | columnar {:>7.1} Melem/s | x{:.2} ==",
            cell.dims, cell.scalar_melems_per_s, cell.kernel_melems_per_s, cell.speedup
        );
        if !cell.bit_identical || !cell.zero_alloc {
            diverged = true;
            eprintln!(
                "!! kernel D={}: bit_identical={} zero_alloc={}",
                cell.dims, cell.bit_identical, cell.zero_alloc
            );
        }
    }
    let geomean = (kernel.iter().map(|c| c.speedup.ln()).sum::<f64>() / kernel.len() as f64).exp();
    if geomean < 2.0 {
        diverged = true;
        eprintln!("!! columnar kernels only reached x{geomean:.2} over scalar (need >= x2.0)");
    }

    // --- parallel cells: SB at 1/2/4/8 worker threads -----------------------
    let &(pf, po) = scales.last().expect("at least one scale");
    let parallel_cell = Cell {
        distribution: ObjectDistribution::AntiCorrelated,
        num_functions: pf,
        num_objects: po,
    };
    let problem = build_problem(&parallel_cell);
    let mut parallel: Vec<ParallelRow> = Vec::new();
    let mut base_wall = f64::INFINITY;
    let mut base_canonical = None;
    for threads in [1usize, 2, 4, 8] {
        let options = SbOptions {
            threads: Some(threads),
            ..SbOptions::default()
        };
        let mut best_wall = f64::INFINITY;
        let mut last: Option<AssignmentResult> = None;
        for _ in 0..repeats {
            let mut tree = problem.build_tree(None, 0.02);
            let started = Instant::now();
            let result = sb(&problem, &mut tree, &options);
            best_wall = best_wall.min(started.elapsed().as_secs_f64());
            last = Some(result);
        }
        let canonical = last.expect("repeats >= 1").assignment.canonical();
        if threads == 1 {
            base_wall = best_wall;
            base_canonical = Some(canonical.clone());
        }
        let canonical_identical = base_canonical.as_ref() == Some(&canonical);
        if !canonical_identical {
            diverged = true;
            eprintln!("!! parallel SB at {threads} threads changed the matching");
        }
        let speedup = base_wall / best_wall;
        eprintln!(
            "== parallel SB anti-correlated |F|={pf} |O|={po} threads={threads}: wall={best_wall:.4}s (x{speedup:.2} vs 1) identical={canonical_identical} ==",
        );
        parallel.push(ParallelRow {
            workload: parallel_cell.distribution.label().to_string(),
            num_functions: pf,
            num_objects: po,
            threads,
            wall_s: best_wall,
            speedup_vs_1: speedup,
            canonical_identical,
        });
    }
    // the scaling gate only means something when the hardware can scale
    if hardware_threads >= 8 {
        let speedup_8 = parallel
            .iter()
            .find(|r| r.threads == 8)
            .map(|r| r.speedup_vs_1)
            .unwrap_or(0.0);
        if speedup_8 < 3.0 {
            diverged = true;
            eprintln!(
                "!! parallel SB reached only x{speedup_8:.2} at 8 threads on a {hardware_threads}-thread machine (need >= x3.0)"
            );
        }
    } else {
        eprintln!("== parallel speedup gate skipped: {hardware_threads} hardware thread(s) < 8 ==");
    }

    let report = BenchReport {
        bench: "solver".to_string(),
        scale: if smoke { "smoke" } else { "default" }.to_string(),
        repeats,
        created_unix_s: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        hardware_threads,
        rows,
        kernel,
        parallel,
    };
    // lint: allow(no-raw-fs) -- bench report output, not durable state
    let file = std::fs::File::create(&out).expect("create bench output file");
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), &report)
        .expect("serialize bench report");
    eprintln!("wrote {}", out.display());

    if diverged {
        eprintln!("FAILED: oracle divergence or kernel/parallel gate violation (see log above)");
        std::process::exit(1);
    }
}

/// Deterministic workload construction (same recipe as the figure binaries).
fn build_problem(cell: &Cell) -> Problem {
    let functions = pref_datagen::uniform_weight_functions(cell.num_functions, DIMS, SEED ^ 0x00f1);
    let objects = cell
        .distribution
        .generate(cell.num_objects, DIMS, SEED ^ 0x0bad);
    Problem::from_parts(functions, objects).expect("generated workloads are valid")
}
