//! solver_bench — the repo's reproducible solver perf harness.
//!
//! Runs the paper's default workload shapes (independent / correlated /
//! anti-correlated object distributions at several `|F|`/`|O|` scales) through
//! the dense-ID SB solver, the pre-refactor hash-map SB baseline, the
//! DeltaSky ablation and Brute Force, verifies every canonical output against
//! the exact oracle, and writes a machine-readable `BENCH_solver.json`
//! (wall time, loops, searches, object + auxiliary I/O, peak memory) that
//! seeds the repo's perf trajectory.
//!
//! Usage: `solver_bench [--smoke] [--out <path>] [--repeats <n>]`
//!
//! The process exits non-zero if any solver's canonical matching diverges
//! from the oracle — CI runs `--smoke` as a correctness gate and uploads the
//! JSON as an artifact.

#![forbid(unsafe_code)]

use pref_assign::{oracle, sb, AssignmentResult, Problem, SbOptions};
use pref_bench::sb_hash_baseline;
use pref_datagen::ObjectDistribution;
use pref_rtree::RTree;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// One workload configuration.
struct Cell {
    distribution: ObjectDistribution,
    num_functions: usize,
    num_objects: usize,
}

/// One measurement row of the emitted JSON.
#[derive(Debug, Clone, Serialize)]
struct BenchRow {
    workload: String,
    num_functions: usize,
    num_objects: usize,
    algorithm: String,
    /// Best-of-`repeats` wall time, in seconds.
    wall_s: f64,
    loops: u64,
    searches: u64,
    object_io: u64,
    aux_io: u64,
    peak_memory_bytes: u64,
    pairs: usize,
    matches_oracle: bool,
}

#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    bench: String,
    scale: String,
    repeats: usize,
    created_unix_s: u64,
    rows: Vec<BenchRow>,
}

const DIMS: usize = 3;
const SEED: u64 = 20_090_824; // the paper's VLDB publication date

fn main() {
    let mut smoke = false;
    let mut out = PathBuf::from("BENCH_solver.json");
    let mut repeats: usize = 5;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(path) => out = PathBuf::from(path),
                None => {
                    eprintln!("--out requires a path; try --help");
                    std::process::exit(2);
                }
            },
            "--repeats" => match args.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => repeats = n,
                _ => {
                    eprintln!("--repeats requires a positive integer; try --help");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: solver_bench [--smoke] [--out <path>] [--repeats <n>]");
                return;
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                std::process::exit(2);
            }
        }
    }

    let distributions = [
        ObjectDistribution::Independent,
        ObjectDistribution::Correlated,
        ObjectDistribution::AntiCorrelated,
    ];
    // The 2k-object scale is the reference point of the perf trajectory and is
    // present at every bench scale; the larger cells only run off-CI.
    let scales: &[(usize, usize)] = if smoke {
        &[(50, 500), (100, 2_000)]
    } else {
        &[(50, 500), (100, 2_000), (200, 5_000)]
    };
    let cells: Vec<Cell> = distributions
        .iter()
        .flat_map(|&distribution| {
            scales
                .iter()
                .map(move |&(num_functions, num_objects)| Cell {
                    distribution,
                    num_functions,
                    num_objects,
                })
        })
        .collect();

    let mut rows: Vec<BenchRow> = Vec::new();
    let mut diverged = false;

    for cell in &cells {
        let problem = build_problem(cell);
        let want = oracle(&problem).canonical();
        let workload = cell.distribution.label().to_string();
        eprintln!(
            "== {} |F|={} |O|={} ==",
            workload, cell.num_functions, cell.num_objects
        );

        type Runner<'a> = Box<dyn Fn(&Problem, &mut RTree) -> AssignmentResult + 'a>;
        let algorithms: Vec<(&str, Runner)> = vec![
            (
                "SB-dense",
                Box::new(|p: &Problem, t: &mut RTree| sb(p, t, &SbOptions::default())),
            ),
            (
                "SB-hash-baseline",
                Box::new(|p: &Problem, t: &mut RTree| sb_hash_baseline(p, t, 0.025)),
            ),
            (
                "SB-DeltaSky",
                Box::new(|p: &Problem, t: &mut RTree| sb(p, t, &SbOptions::delta_sky())),
            ),
            (
                "Brute Force",
                Box::new(|p: &Problem, t: &mut RTree| pref_assign::brute_force(p, t)),
            ),
        ];

        for (name, run) in &algorithms {
            let mut best_wall = f64::INFINITY;
            let mut last: Option<AssignmentResult> = None;
            for _ in 0..repeats {
                let mut tree = problem.build_tree(None, 0.02);
                let started = Instant::now();
                let result = run(&problem, &mut tree);
                best_wall = best_wall.min(started.elapsed().as_secs_f64());
                last = Some(result);
            }
            let result = last.expect("repeats >= 1");
            let matches = result.assignment.canonical() == want;
            if !matches {
                diverged = true;
                eprintln!("!! {name} diverges from the oracle on {workload}");
            }
            eprintln!("  {name:<18} wall={best_wall:.4}s {}", result.metrics);
            rows.push(BenchRow {
                workload: workload.clone(),
                num_functions: cell.num_functions,
                num_objects: cell.num_objects,
                algorithm: name.to_string(),
                wall_s: best_wall,
                loops: result.metrics.loops,
                searches: result.metrics.searches,
                object_io: result.metrics.object_io.io_accesses(),
                aux_io: result.metrics.aux_io.io_accesses(),
                peak_memory_bytes: result.metrics.peak_memory_bytes,
                pairs: result.assignment.len(),
                matches_oracle: matches,
            });
        }
    }

    let report = BenchReport {
        bench: "solver".to_string(),
        scale: if smoke { "smoke" } else { "default" }.to_string(),
        repeats,
        created_unix_s: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        rows,
    };
    // lint: allow(no-raw-fs) -- bench report output, not durable state
    let file = std::fs::File::create(&out).expect("create bench output file");
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), &report)
        .expect("serialize bench report");
    eprintln!("wrote {}", out.display());

    if diverged {
        eprintln!("FAILED: at least one solver diverged from the oracle");
        std::process::exit(1);
    }
}

/// Deterministic workload construction (same recipe as the figure binaries).
fn build_problem(cell: &Cell) -> Problem {
    let functions = pref_datagen::uniform_weight_functions(cell.num_functions, DIMS, SEED ^ 0x00f1);
    let objects = cell
        .distribution
        .generate(cell.num_objects, DIMS, SEED ^ 0x0bad);
    Problem::from_parts(functions, objects).expect("generated workloads are valid")
}
