//! Regenerates Figure 13 of the paper's evaluation (see DESIGN.md §4).
#![forbid(unsafe_code)]

use pref_bench::{experiments, CliOptions};

fn main() {
    let cli = CliOptions::from_args();
    let report = experiments::by_name("fig13", cli.scale).expect("known experiment");
    report.print();
    match report.write_json(&cli.output_dir, "fig13") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write JSON results: {err}"),
    }
}
