//! engine_bench — incremental repair vs. full recompute under update streams.
//!
//! For every workload cell (object distribution × update-rate) the harness
//! builds an initial problem, feeds a deterministic arrival/departure stream
//! through a long-lived [`AssignmentEngine`], and after **every** update also
//! re-solves the current snapshot from scratch with the batch SB solver
//! (fresh R-tree, fresh BBS). It compares the two matchings canonically — any
//! divergence is a correctness bug and fails the process — and accumulates
//! both sides' object-tree I/O and wall time into `BENCH_engine.json`.
//!
//! A separate **churn-soak** cell drives a long 50%-churn object stream
//! through two engines — compaction enabled (default) vs. tombstone-only —
//! verifying canonical oracle equality after every update and measuring
//! whether the R-tree and the per-update object I/O stay bounded as the
//! stream ages. It fails the process if the compacting engine's index grows
//! beyond a constant factor of the live population or if late-stream
//! per-update I/O degrades versus the early stream.
//!
//! An **ack-latency** cell drives a removal-heavy stream through an engine
//! that compacts inline on the ack path vs. a deferred-compaction twin whose
//! debt is drained between acks (the shard writer's background-compactor
//! split). It reports per-update ack percentiles for both and fails the
//! process if the deferred engine ever compacts inside a timed ack, if the
//! inline engine never compacts at all, or if the matchings diverge.
//!
//! Usage: `engine_bench [--smoke] [--out <path>]`
//!
//! CI runs `--smoke` as a gate: non-zero exit on oracle divergence, on an
//! unstable engine matching, or if incremental repair fails to strictly
//! undercut the recompute baseline's total update-phase I/O in any cell.

#![forbid(unsafe_code)]

use pref_assign::{oracle, verify_stable, Problem, SbSolver, Solver};
use pref_bench::percentile_us;
use pref_datagen::{update_stream, ObjectDistribution, UpdateStreamConfig};
use pref_engine::{AssignmentEngine, EngineOptions};
use pref_rtree::RecordId;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

const DIMS: usize = 3;
const SEED: u64 = 20_090_824; // the paper's VLDB publication date

/// One workload cell of the sweep.
struct Cell {
    distribution: ObjectDistribution,
    num_functions: usize,
    num_objects: usize,
    num_events: usize,
}

/// One measurement row of the emitted JSON.
#[derive(Debug, Clone, Serialize)]
struct BenchRow {
    workload: String,
    num_functions: usize,
    num_objects: usize,
    num_events: usize,
    /// Object-tree I/O of the engine's initial BBS + stabilization.
    engine_initial_io: u64,
    /// Object-tree I/O the engine spent across the whole update stream.
    engine_update_io: u64,
    /// Wall time the engine spent applying the whole update stream.
    engine_update_wall_s: f64,
    /// Summed object-tree I/O of one full SB recompute per update.
    recompute_io: u64,
    /// Summed wall time of one full SB recompute per update (solve only,
    /// index construction excluded — charitable to the baseline).
    recompute_wall_s: f64,
    /// Pairs the engine retracted (departures + repair displacements) across
    /// the engine's lifetime; each retraction is balanced by at most one
    /// re-establishment, so this is the repair-volume measure of the cell.
    pairs_retracted: u64,
    /// `recompute_io / max(engine_update_io, 1)`.
    io_savings_factor: f64,
    /// Engine matched the recompute canonically after every single update.
    matches_oracle: bool,
}

/// The churn-soak measurement: one long 50%-churn stream, compaction
/// enabled vs. tombstone-only.
#[derive(Debug, Clone, Serialize)]
struct ChurnRow {
    workload: String,
    num_functions: usize,
    num_objects: usize,
    num_events: usize,
    /// Live objects at the end of the stream.
    live_objects_end: u64,
    /// R-tree records / nodes at the end, compaction enabled.
    compacted_tree_records: u64,
    compacted_tree_pages: u64,
    /// R-tree records / nodes at the end, tombstone-only (monotonic growth).
    tombstone_tree_records: u64,
    tombstone_tree_pages: u64,
    /// Tombstone ratio of the compacting engine at the end (≤ threshold).
    tombstone_ratio_end: f64,
    compaction_batches: u64,
    physical_deletes: u64,
    /// Freed pages that were resident in the LRU buffer when compaction
    /// dropped them (wired through `PagedStore::free`).
    buffer_invalidations: u64,
    /// Backend page writes / fsyncs on the object tree. The stock bench runs
    /// on the in-memory backend, so both must stay 0 — a regression here
    /// means the hot path started touching a durable backend.
    tree_page_writes: u64,
    tree_sync_calls: u64,
    /// Mean per-update object-tree I/O over the first / last quarter of the
    /// stream (compaction enabled). Boundedness means the last quarter does
    /// not degrade versus the first.
    io_per_update_first_quarter: f64,
    io_per_update_last_quarter: f64,
    /// Engine matched the exact oracle canonically after every update.
    matches_oracle: bool,
}

/// The ack-latency-under-compaction cell: the same removal-heavy stream
/// through an engine that compacts inline on the ack path vs. one that
/// defers compaction (the shard writer's background-compactor mode, drained
/// between acks, outside the timed region).
#[derive(Debug, Clone, Serialize)]
struct AckRow {
    workload: String,
    num_functions: usize,
    num_objects: usize,
    num_events: usize,
    /// Per-update ack latency percentiles, inline compaction (µs).
    inline_ack_p50_us: f64,
    inline_ack_p99_us: f64,
    inline_ack_max_us: f64,
    /// Per-update ack latency percentiles, deferred compaction (µs).
    deferred_ack_p50_us: f64,
    deferred_ack_p99_us: f64,
    deferred_ack_max_us: f64,
    /// Compaction batches the inline engine ran *inside* its ack path
    /// (must be > 0 for the cell to mean anything).
    inline_compaction_batches: u64,
    /// Compaction batches the deferred engine ran inside a timed ack
    /// (gated: must be 0 — that is the whole point of deferral).
    deferred_batches_in_ack_path: u64,
    /// Compaction batches the deferred engine ran in the untimed drain.
    deferred_batches_total: u64,
    /// Both engines agreed canonically after every event.
    matches_inline: bool,
}

#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    bench: String,
    scale: String,
    created_unix_s: u64,
    rows: Vec<BenchRow>,
    churn: Vec<ChurnRow>,
    ack: Vec<AckRow>,
}

fn main() {
    let mut smoke = false;
    let mut out = PathBuf::from("BENCH_engine.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(path) => out = PathBuf::from(path),
                None => {
                    eprintln!("--out requires a path; try --help");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: engine_bench [--smoke] [--out <path>]");
                return;
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                std::process::exit(2);
            }
        }
    }

    let distributions = [
        ObjectDistribution::Independent,
        ObjectDistribution::Correlated,
        ObjectDistribution::AntiCorrelated,
    ];
    // update-rate sweep: events per stream against a fixed base population
    let (num_functions, num_objects, rates): (usize, usize, &[usize]) = if smoke {
        (40, 800, &[8, 24])
    } else {
        (100, 5_000, &[16, 64, 128])
    };
    let cells: Vec<Cell> = distributions
        .iter()
        .flat_map(|&distribution| {
            rates.iter().map(move |&num_events| Cell {
                distribution,
                num_functions,
                num_objects,
                num_events,
            })
        })
        .collect();

    let mut rows = Vec::new();
    let mut failed = false;

    for cell in &cells {
        let workload = cell.distribution.label().to_string();
        eprintln!(
            "== {} |F|={} |O|={} events={} ==",
            workload, cell.num_functions, cell.num_objects, cell.num_events
        );
        let problem = build_problem(cell);
        let live_objects: Vec<RecordId> = problem.objects().iter().map(|o| o.id).collect();
        let live_functions: Vec<u64> = problem.functions().iter().map(|f| f.id.0 as u64).collect();
        let events = update_stream(
            &UpdateStreamConfig {
                num_events: cell.num_events,
                dims: DIMS,
                distribution: cell.distribution,
                insert_fraction: 0.5,
                object_fraction: 0.7,
                min_objects: 1,
                min_functions: 1,
                max_capacity: 1,
                seed: SEED ^ cell.num_events as u64,
            },
            &live_objects,
            &live_functions,
        );

        let mut engine = AssignmentEngine::new(&problem, &EngineOptions::default()).unwrap();
        let solver = SbSolver::default();
        let mut engine_wall = 0.0f64;
        let mut recompute_io = 0u64;
        let mut recompute_wall = 0.0f64;
        let mut matches = true;
        for (step, event) in events.iter().enumerate() {
            let started = Instant::now();
            engine.apply(event).expect("stream events are valid");
            engine_wall += started.elapsed().as_secs_f64();

            // full recompute baseline on the current snapshot
            let snapshot = engine
                .snapshot_problem()
                .expect("populations stay non-empty");
            let mut tree = snapshot.build_tree(None, 0.02);
            let started = Instant::now();
            let batch = solver.solve(&snapshot, &mut tree);
            recompute_wall += started.elapsed().as_secs_f64();
            recompute_io += batch.metrics.object_io.io_accesses();

            if batch.assignment.canonical() != engine.assignment().canonical() {
                matches = false;
                failed = true;
                eprintln!("!! divergence on {workload} at update #{step} ({event:?})");
            }
            if smoke || step % 16 == 0 || step + 1 == events.len() {
                if let Err(violation) = verify_stable(&snapshot, &engine.assignment()) {
                    matches = false;
                    failed = true;
                    eprintln!("!! unstable on {workload} at update #{step}: {violation}");
                }
            }
        }

        let stats = engine.stats();
        let engine_update_io = engine.update_object_io().io_accesses();
        if engine_update_io >= recompute_io {
            failed = true;
            eprintln!(
                "!! incremental repair did not undercut recompute on {workload}: {engine_update_io} vs {recompute_io}"
            );
        }
        let row = BenchRow {
            workload,
            num_functions: cell.num_functions,
            num_objects: cell.num_objects,
            num_events: cell.num_events,
            engine_initial_io: engine.initial_object_io().io_accesses(),
            engine_update_io,
            engine_update_wall_s: engine_wall,
            recompute_io,
            recompute_wall_s: recompute_wall,
            pairs_retracted: stats.pairs_retracted,
            io_savings_factor: recompute_io as f64 / engine_update_io.max(1) as f64,
            matches_oracle: matches,
        };
        eprintln!(
            "  engine: update_io={} wall={:.4}s | recompute: io={} wall={:.4}s | savings x{:.1}",
            row.engine_update_io,
            row.engine_update_wall_s,
            row.recompute_io,
            row.recompute_wall_s,
            row.io_savings_factor
        );
        rows.push(row);
    }

    let (churn_row, churn_failed) = run_churn_soak(smoke);
    failed |= churn_failed;

    let (ack_row, ack_failed) = run_ack_cell(smoke);
    failed |= ack_failed;

    let report = BenchReport {
        bench: "engine".to_string(),
        scale: if smoke { "smoke" } else { "default" }.to_string(),
        created_unix_s: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        rows,
        churn: vec![churn_row],
        ack: vec![ack_row],
    };
    // lint: allow(no-raw-fs) -- bench report output, not durable state
    let file = std::fs::File::create(&out).expect("create bench output file");
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), &report)
        .expect("serialize bench report");
    eprintln!("wrote {}", out.display());

    if failed {
        eprintln!("FAILED: divergence, instability, or no I/O savings (see log above)");
        std::process::exit(1);
    }
}

/// Drives the churn-soak cell: a long 50%-churn object stream through a
/// compacting engine and a tombstone-only twin. Returns the measurement row
/// and whether any gate failed (divergence, instability, unbounded index
/// growth, or late-stream I/O degradation).
fn run_churn_soak(smoke: bool) -> (ChurnRow, bool) {
    let (num_functions, num_objects, num_events) = if smoke {
        (24usize, 320usize, 400usize)
    } else {
        (32, 640, 2_400)
    };
    eprintln!("== churn-soak |F|={num_functions} |O|={num_objects} events={num_events} ==");
    let problem = build_problem(&Cell {
        distribution: ObjectDistribution::Independent,
        num_functions,
        num_objects,
        num_events,
    });
    let live_objects: Vec<RecordId> = problem.objects().iter().map(|o| o.id).collect();
    let live_functions: Vec<u64> = problem.functions().iter().map(|f| f.id.0 as u64).collect();
    let events = update_stream(
        &UpdateStreamConfig {
            num_events,
            dims: DIMS,
            distribution: ObjectDistribution::Independent,
            insert_fraction: 0.5,
            object_fraction: 0.9,
            min_objects: num_objects / 4,
            min_functions: 4,
            max_capacity: 1,
            seed: SEED ^ 0xc4u64,
        },
        &live_objects,
        &live_functions,
    );

    let compacting = EngineOptions::default();
    let tombstoning = EngineOptions {
        compaction_threshold: None,
        ..EngineOptions::default()
    };
    let mut engine = AssignmentEngine::new(&problem, &compacting).unwrap();
    let mut twin = AssignmentEngine::new(&problem, &tombstoning).unwrap();
    let io_start = engine.update_object_io().io_accesses();
    debug_assert_eq!(io_start, 0);

    let mut failed = false;
    let mut matches = true;
    let quarter = num_events / 4;
    let mut io_at_quarter = [0u64; 2]; // io after first quarter, before last
    let mut worst_growth = 0.0f64;
    for (step, event) in events.iter().enumerate() {
        engine.apply(event).expect("stream events are valid");
        twin.apply(event).expect("stream events are valid");

        let snapshot = engine
            .snapshot_problem()
            .expect("populations stay non-empty");
        let canonical = engine.assignment().canonical();
        if canonical != oracle(&snapshot).canonical() {
            matches = false;
            failed = true;
            eprintln!("!! churn-soak oracle divergence at update #{step} ({event:?})");
        }
        if canonical != twin.assignment().canonical() {
            matches = false;
            failed = true;
            eprintln!("!! compaction changed the matching at update #{step} ({event:?})");
        }
        if step % 16 == 0 || step + 1 == events.len() {
            if let Err(violation) = verify_stable(&snapshot, &engine.assignment()) {
                matches = false;
                failed = true;
                eprintln!("!! churn-soak unstable at update #{step}: {violation}");
            }
        }
        let stats = engine.stats();
        worst_growth =
            worst_growth.max(stats.tree_records as f64 / stats.live_objects.max(1) as f64);
        if step + 1 == quarter {
            io_at_quarter[0] = engine.update_object_io().io_accesses();
        }
        if step + 1 == num_events - quarter {
            io_at_quarter[1] = engine.update_object_io().io_accesses();
        }
    }

    let stats = engine.stats();
    let twin_stats = twin.stats();
    let total_io = engine.update_object_io().io_accesses();
    let first_q = io_at_quarter[0] as f64 / quarter as f64;
    let last_q = (total_io - io_at_quarter[1]) as f64 / quarter as f64;

    // gate: the index must stay within a constant factor of the live
    // population at every point of the stream (threshold 0.25 ⇒ ≤ 4/3)
    if worst_growth > 2.0 {
        failed = true;
        eprintln!("!! churn-soak index growth unbounded: peak {worst_growth:.2}x live population");
    }
    // gate: the in-memory backend never writes pages or fsyncs
    if stats.tree_page_writes != 0 || stats.tree_sync_calls != 0 {
        failed = true;
        eprintln!(
            "!! in-memory bench performed durable I/O: {} page writes, {} syncs",
            stats.tree_page_writes, stats.tree_sync_calls
        );
    }
    // gate: per-update I/O must not degrade as the stream ages
    if last_q > 3.0 * first_q + 2.0 {
        failed = true;
        eprintln!(
            "!! churn-soak per-update I/O degraded: first quarter {first_q:.2}, last {last_q:.2}"
        );
    }
    let row = ChurnRow {
        workload: "churn-soak".to_string(),
        num_functions,
        num_objects,
        num_events,
        live_objects_end: stats.live_objects,
        compacted_tree_records: stats.tree_records,
        compacted_tree_pages: stats.tree_pages,
        tombstone_tree_records: twin_stats.tree_records,
        tombstone_tree_pages: twin_stats.tree_pages,
        tombstone_ratio_end: stats.tombstone_ratio(),
        compaction_batches: stats.compaction_batches,
        physical_deletes: stats.physical_deletes,
        buffer_invalidations: engine.total_object_io().buffer_invalidations,
        tree_page_writes: stats.tree_page_writes,
        tree_sync_calls: stats.tree_sync_calls,
        io_per_update_first_quarter: first_q,
        io_per_update_last_quarter: last_q,
        matches_oracle: matches,
    };
    eprintln!(
        "  compacted: {} records / {} pages (peak {:.2}x live) | tombstone-only: {} records / {} pages | io/update first {:.2} last {:.2} | {} deletes in {} batches",
        row.compacted_tree_records,
        row.compacted_tree_pages,
        worst_growth,
        row.tombstone_tree_records,
        row.tombstone_tree_pages,
        row.io_per_update_first_quarter,
        row.io_per_update_last_quarter,
        row.physical_deletes,
        row.compaction_batches
    );
    (row, failed)
}

/// Drives the ack-latency cell: a removal-heavy stream through an inline-
/// compacting engine and a deferred-compaction twin. The twin's compaction
/// debt is drained *between* events, outside the timed region — exactly the
/// shard writer's background-compactor split. Returns the row and whether a
/// gate failed (canonical divergence, compaction inside a deferred ack, or
/// an inline engine that never compacted).
fn run_ack_cell(smoke: bool) -> (AckRow, bool) {
    let (num_functions, num_objects, num_events) = if smoke {
        (24usize, 320usize, 240usize)
    } else {
        (32, 640, 900)
    };
    eprintln!(
        "== ack-under-compaction |F|={num_functions} |O|={num_objects} events={num_events} =="
    );
    let problem = build_problem(&Cell {
        distribution: ObjectDistribution::Independent,
        num_functions,
        num_objects,
        num_events,
    });
    let live_objects: Vec<RecordId> = problem.objects().iter().map(|o| o.id).collect();
    let live_functions: Vec<u64> = problem.functions().iter().map(|f| f.id.0 as u64).collect();
    let events = update_stream(
        &UpdateStreamConfig {
            num_events,
            dims: DIMS,
            distribution: ObjectDistribution::Independent,
            insert_fraction: 0.35, // removal-heavy: keeps the compactor in debt
            object_fraction: 1.0,
            min_objects: num_objects / 5,
            min_functions: 4,
            max_capacity: 1,
            seed: SEED ^ 0xacu64,
        },
        &live_objects,
        &live_functions,
    );

    let inline_opts = EngineOptions {
        compaction_threshold: Some(0.05),
        compaction_batch: 16,
        ..EngineOptions::default()
    };
    let deferred_opts = EngineOptions {
        deferred_compaction: true,
        ..inline_opts.clone()
    };
    let mut inline = AssignmentEngine::new(&problem, &inline_opts).unwrap();
    let mut deferred = AssignmentEngine::new(&problem, &deferred_opts).unwrap();

    let mut failed = false;
    let mut matches = true;
    let mut inline_nanos: Vec<u64> = Vec::with_capacity(num_events);
    let mut deferred_nanos: Vec<u64> = Vec::with_capacity(num_events);
    let mut batches_in_ack_path = 0u64;
    for (step, event) in events.iter().enumerate() {
        let started = Instant::now();
        inline.apply(event).expect("stream events are valid");
        inline_nanos.push(started.elapsed().as_nanos() as u64);

        let batches_before = deferred.stats().compaction_batches;
        let started = Instant::now();
        deferred.apply(event).expect("stream events are valid");
        deferred_nanos.push(started.elapsed().as_nanos() as u64);
        batches_in_ack_path += deferred.stats().compaction_batches - batches_before;

        // the background compactor catches up between acks, untimed
        while deferred.run_compaction_batch() {}

        if inline.assignment().canonical() != deferred.assignment().canonical() {
            matches = false;
            failed = true;
            eprintln!(
                "!! ack cell: deferred compaction changed the matching at #{step} ({event:?})"
            );
        }
    }

    if batches_in_ack_path != 0 {
        failed = true;
        eprintln!(
            "!! deferred engine compacted {batches_in_ack_path} batch(es) inside the ack path"
        );
    }
    let inline_batches = inline.stats().compaction_batches;
    if inline_batches == 0 {
        failed = true;
        eprintln!("!! ack cell never triggered inline compaction — the cell measured nothing");
    }
    inline_nanos.sort_unstable();
    deferred_nanos.sort_unstable();
    let row = AckRow {
        workload: "ack-under-compaction".to_string(),
        num_functions,
        num_objects,
        num_events,
        inline_ack_p50_us: percentile_us(&inline_nanos, 0.50),
        inline_ack_p99_us: percentile_us(&inline_nanos, 0.99),
        inline_ack_max_us: percentile_us(&inline_nanos, 1.0),
        deferred_ack_p50_us: percentile_us(&deferred_nanos, 0.50),
        deferred_ack_p99_us: percentile_us(&deferred_nanos, 0.99),
        deferred_ack_max_us: percentile_us(&deferred_nanos, 1.0),
        inline_compaction_batches: inline_batches,
        deferred_batches_in_ack_path: batches_in_ack_path,
        deferred_batches_total: deferred.stats().compaction_batches,
        matches_inline: matches,
    };
    eprintln!(
        "  inline ack: p50={:.1}us p99={:.1}us max={:.1}us ({} compaction batches on the ack path)",
        row.inline_ack_p50_us,
        row.inline_ack_p99_us,
        row.inline_ack_max_us,
        row.inline_compaction_batches
    );
    eprintln!(
        "  deferred ack: p50={:.1}us p99={:.1}us max={:.1}us ({} batches drained off-path, 0 on-path)",
        row.deferred_ack_p50_us, row.deferred_ack_p99_us, row.deferred_ack_max_us, row.deferred_batches_total
    );
    (row, failed)
}

/// Deterministic initial workload (same recipe as `solver_bench`).
fn build_problem(cell: &Cell) -> Problem {
    let functions = pref_datagen::uniform_weight_functions(cell.num_functions, DIMS, SEED ^ 0x00f1);
    let objects = cell
        .distribution
        .generate(cell.num_objects, DIMS, SEED ^ 0x0bad);
    Problem::from_parts(functions, objects).expect("generated workloads are valid")
}
