//! Ablation of the Ω (candidate-queue) knob of SB's resumable TA search.
#![forbid(unsafe_code)]

use pref_bench::{experiments, CliOptions};

fn main() {
    let cli = CliOptions::from_args();
    let report = experiments::by_name("omega", cli.scale).expect("known experiment");
    report.print();
    match report.write_json(&cli.output_dir, "ablation_omega") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write JSON results: {err}"),
    }
}
