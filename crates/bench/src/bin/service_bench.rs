//! service_bench — snapshot-read throughput scaling under a churning writer.
//!
//! One shard serves a live assignment problem while a producer thread keeps a
//! steady update load flowing (batched stream events, ~500 publications/s).
//! Reader fleets of 1, 2, 4 and 8 threads then answer point lookups
//! (`assignment_of` + `functions_of`) against the published snapshots, in two
//! modes:
//!
//! * **paced** (the gated mode): each reader models an independent request
//!   stream with a fixed per-request interval — the standard closed-loop
//!   serving-bench load model. Because the snapshot read path takes no locks
//!   and allocates nothing, adding reader streams must multiply aggregate
//!   throughput until CPU saturation; the gate requires ≥ 4× from 1 → 8
//!   readers. A read path that serialized readers against the writer (or
//!   each other) would flatten this curve even below CPU saturation, which
//!   is exactly what the gate detects.
//! * **saturated** (reported, not gated): readers spin flat-out. Aggregate
//!   throughput in this mode scales with *hardware* threads — flat on a
//!   1-core CI container by construction — so it is recorded for
//!   cross-machine comparison but only gated against collapse (8 readers
//!   must retain ≥ 40% of 1-reader throughput: a true collapse, e.g. a
//!   writer-held lock on the read path, drops far below that).
//!
//! Every reader verifies each newly observed snapshot version against the
//! snapshot's own problem (`verify_stable`) and checks per-reader version
//! monotonicity; any violation fails the run. Each fleet row also reports
//! p50/p99/p999 per-request read latency (snapshot pin + both lookups), and
//! a dedicated **update-ack** cell reports p50/p99/p999 of the full
//! producer-visible write ack (batch submit + flush-to-publication).
//!
//! A **front-door** cell additionally drives the whole stack over the real
//! socket path (`pref_net`'s wire protocol against a live TCP server): an
//! *open-loop* load generator schedules request arrivals at a fixed offered
//! rate and measures every latency from the *scheduled* arrival — so
//! queueing delay counts and a stalled server cannot hide behind coordinated
//! omission. Tenants are drawn Zipf-like (a hot tenant concentrates load on
//! one shard), read and update-ack p50/p99/p999 are reported, and the cell
//! gates on p999 SLOs, on sustaining ≥ 80% of the offered rate, on zero
//! protocol errors, and on a dedicated overload probe actually observing
//! typed `Overloaded` rejects (admission control provably engages). Usage:
//! `service_bench [--smoke] [--out <path>]`.

#![forbid(unsafe_code)]

use pref_assign::{ObjectRecord, Problem};
use pref_bench::percentile_us;
use pref_datagen::{update_stream, ObjectDistribution, UpdateStreamConfig};
use pref_engine::EngineOptions;
use pref_geom::Point;
use pref_net::{NetClient, NetError, Server, ServerConfig, TokenBucketConfig};
use pref_rtree::RecordId;
use pref_service::{
    AssignmentSnapshot, DurabilityConfig, FsyncPolicy, ServiceConfig, ShardedService, UpdateOp,
};
use serde::Serialize;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIMS: usize = 3;
const SEED: u64 = 20_090_824;
const NUM_FUNCTIONS: usize = 16;
const NUM_OBJECTS: usize = 120;
/// Paced mode: one request per reader per this interval.
const PACED_INTERVAL: Duration = Duration::from_millis(2);
/// Producer: one batch per this interval (batch size 8 → ~4k updates/s).
const WRITER_INTERVAL: Duration = Duration::from_millis(2);
const WRITER_BATCH: usize = 8;

// --- front-door cell parameters --------------------------------------------
/// Reader connections in the open-loop socket cell.
const FRONT_DOOR_READ_CONNS: usize = 4;
/// Open-loop read arrivals: one per connection per this interval (500/s per
/// connection, 2,000/s offered across the fleet).
const FRONT_DOOR_READ_INTERVAL: Duration = Duration::from_millis(2);
/// Open-loop update-ack arrivals (update + flush round trip): 200/s.
const FRONT_DOOR_ACK_INTERVAL: Duration = Duration::from_millis(5);
/// Updates per front-door ack batch.
const FRONT_DOOR_ACK_BATCH: usize = 4;
/// Tenant population for the Zipf draw.
const FRONT_DOOR_TENANTS: usize = 64;
/// Zipf skew (s): tenant k gets weight 1/k^s — the head tenant alone
/// carries ~13% of the offered load onto one shard.
const FRONT_DOOR_ZIPF_S: f64 = 1.1;
/// p999 SLO for reads over the socket (generous: shared CI containers).
const FRONT_DOOR_READ_P999_SLO_US: f64 = 25_000.0;
/// p999 SLO for the networked update-ack (update + flush-to-publication).
const FRONT_DOOR_ACK_P999_SLO_US: f64 = 150_000.0;

#[derive(Debug, Clone, Serialize)]
struct ReaderRow {
    mode: String,
    readers: usize,
    window_s: f64,
    total_reads: u64,
    reads_per_s: f64,
    /// Aggregate throughput relative to the 1-reader row of the same mode.
    scaling_vs_1: f64,
    /// Per-request read latency percentiles over the fleet's merged sample
    /// (snapshot pin + both point lookups; pacing sleep excluded), in µs.
    read_p50_us: f64,
    read_p99_us: f64,
    read_p999_us: f64,
    /// Distinct snapshot versions the fleet observed (sum over readers).
    snapshots_observed: u64,
    /// Snapshots fully re-verified with `verify_stable` (sum over readers).
    snapshots_verified: u64,
    /// Stability violations + version-monotonicity violations (must be 0).
    violations: u64,
}

#[derive(Debug, Clone, Serialize)]
struct WriterRow {
    updates_submitted: u64,
    updates_processed: u64,
    updates_rejected: u64,
    final_version: u64,
    live_objects_end: u64,
    live_functions_end: u64,
}

/// The durability cell: wall time to recover a shard from its WAL +
/// checkpoint directory, and whether the recovered matching is canonically
/// identical to the pre-shutdown one.
#[derive(Debug, Clone, Serialize)]
struct RecoveryRow {
    /// Update batches logged to the WAL across the durable run.
    batches_logged: u64,
    /// Checkpoint cadence (batches between rotations).
    checkpoint_every: u64,
    /// Wall time of `ShardedService::recover` (restore + replay + re-solve
    /// + first publication).
    recover_wall_ms: f64,
    /// Matched pairs in the recovered snapshot.
    recovered_pairs: usize,
    /// Recovered matching equals the pre-shutdown matching, pair for pair
    /// and score bit for score bit (gated).
    matches_pre_shutdown: bool,
}

/// The update-ack cell: submit-to-published latency of write batches on a
/// dedicated shard (batch enqueue + `flush`, i.e. the full ack the writer
/// protocol gives a producer), in µs.
#[derive(Debug, Clone, Serialize)]
struct UpdateAckRow {
    batches: u64,
    batch_size: usize,
    ack_p50_us: f64,
    ack_p99_us: f64,
    ack_p999_us: f64,
}

/// The front-door cell: the open-loop load harness over the real socket
/// path, plus the overload probe. Latencies are from the *scheduled*
/// arrival (open-loop: queueing delay counts), in µs.
#[derive(Debug, Clone, Serialize)]
struct FrontDoorRow {
    shards: usize,
    read_connections: usize,
    tenants: usize,
    zipf_s: f64,
    window_s: f64,
    offered_reads_per_s: f64,
    achieved_reads_per_s: f64,
    read_p50_us: f64,
    read_p99_us: f64,
    read_p999_us: f64,
    /// The committed read p999 SLO this run was gated against.
    read_p999_slo_us: f64,
    ack_batch_size: usize,
    offered_acks_per_s: f64,
    achieved_acks_per_s: f64,
    ack_p50_us: f64,
    ack_p99_us: f64,
    ack_p999_us: f64,
    /// The committed ack p999 SLO this run was gated against.
    ack_p999_slo_us: f64,
    /// Requests that failed or answered wrongly over the wire (gated: 0).
    protocol_errors: u64,
    /// Typed `Overloaded` rejects the dedicated probe observed (gated: > 0 —
    /// admission control must provably engage under a saturating producer).
    overload_rejects_observed: u64,
}

#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    bench: String,
    scale: String,
    created_unix_s: u64,
    hardware_threads: usize,
    paced_interval_us: u64,
    rows: Vec<ReaderRow>,
    writer: WriterRow,
    update_ack: UpdateAckRow,
    recovery: RecoveryRow,
    front_door: FrontDoorRow,
}

/// Shared flag + counters for one reader fleet run.
struct FleetOutcome {
    total_reads: u64,
    snapshots_observed: u64,
    snapshots_verified: u64,
    violations: u64,
    /// Merged per-request latency sample of the whole fleet, sorted, in ns.
    latencies_ns: Vec<u64>,
}

fn main() {
    let mut smoke = false;
    let mut out = PathBuf::from("BENCH_service.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(path) => out = PathBuf::from(path),
                None => {
                    eprintln!("--out requires a path; try --help");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: service_bench [--smoke] [--out <path>]");
                return;
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    let window = if smoke {
        Duration::from_millis(1_200)
    } else {
        Duration::from_millis(3_000)
    };
    let saturated_window = if smoke {
        Duration::from_millis(500)
    } else {
        Duration::from_millis(1_200)
    };

    // --- the served shard + the churning producer --------------------------
    let functions = pref_datagen::uniform_weight_functions(NUM_FUNCTIONS, DIMS, SEED ^ 0x5e);
    let objects = ObjectDistribution::Independent.generate(NUM_OBJECTS, DIMS, SEED ^ 0x5e11);
    let problem = Problem::from_parts(functions, objects).expect("generated workload is valid");
    let live_objects: Vec<RecordId> = problem.objects().iter().map(|o| o.id).collect();
    let live_functions: Vec<u64> = problem.functions().iter().map(|f| f.id.0 as u64).collect();
    // a long stream so the producer never runs dry during the windows
    let stream: Vec<UpdateOp> = update_stream(
        &UpdateStreamConfig {
            num_events: 400_000,
            dims: DIMS,
            distribution: ObjectDistribution::Independent,
            insert_fraction: 0.5,
            object_fraction: 0.85,
            min_objects: NUM_OBJECTS / 2,
            min_functions: NUM_FUNCTIONS / 2,
            max_capacity: 2,
            seed: SEED ^ 0xbe,
        },
        &live_objects,
        &live_functions,
    )
    .iter()
    .map(UpdateOp::from_event)
    .collect();

    let service = Arc::new(
        ShardedService::start(
            vec![problem],
            &ServiceConfig {
                queue_capacity: 512,
                max_batch: 32,
                engine: EngineOptions::default(),
                durability: None,
            },
        )
        .expect("service starts"),
    );

    let stop_writer = Arc::new(AtomicBool::new(false));
    let writer = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop_writer);
        std::thread::Builder::new()
            .name("bench-writer".into())
            .spawn(move || {
                let mut cursor = 0usize;
                // ordering: pure stop signal; nothing is published through
                // it (final state is synchronized by join below)
                while !stop.load(Ordering::Relaxed) && cursor + WRITER_BATCH <= stream.len() {
                    let batch = stream[cursor..cursor + WRITER_BATCH].to_vec();
                    cursor += WRITER_BATCH;
                    if service.submit_batch(0, batch).is_err() {
                        break;
                    }
                    std::thread::sleep(WRITER_INTERVAL);
                }
            })
            .expect("spawn writer")
    };

    // --- reader fleets ------------------------------------------------------
    let reader_counts = [1usize, 2, 4, 8];
    let mut rows: Vec<ReaderRow> = Vec::new();
    let mut failed = false;
    for paced in [true, false] {
        let mode = if paced { "paced" } else { "saturated" };
        let mode_window = if paced { window } else { saturated_window };
        let mut base_rate = 0.0f64;
        for &count in &reader_counts {
            let outcome = run_fleet(&service, count, mode_window, paced);
            let reads_per_s = outcome.total_reads as f64 / mode_window.as_secs_f64();
            if count == 1 {
                base_rate = reads_per_s;
            }
            let scaling = if base_rate > 0.0 {
                reads_per_s / base_rate
            } else {
                0.0
            };
            let (p50, p99, p999) = (
                percentile_us(&outcome.latencies_ns, 0.50),
                percentile_us(&outcome.latencies_ns, 0.99),
                percentile_us(&outcome.latencies_ns, 0.999),
            );
            eprintln!(
                "== {mode} x{count}: {} reads in {:.2}s ({:.0}/s, {:.2}x vs 1) | p50={:.1}us p99={:.1}us p999={:.1}us | {} snapshots, {} verified, {} violations ==",
                outcome.total_reads,
                mode_window.as_secs_f64(),
                reads_per_s,
                scaling,
                p50,
                p99,
                p999,
                outcome.snapshots_observed,
                outcome.snapshots_verified,
                outcome.violations
            );
            if outcome.violations > 0 {
                failed = true;
                eprintln!(
                    "!! {mode} x{count}: {} stability/monotonicity violations",
                    outcome.violations
                );
            }
            rows.push(ReaderRow {
                mode: mode.to_string(),
                readers: count,
                window_s: mode_window.as_secs_f64(),
                total_reads: outcome.total_reads,
                reads_per_s,
                scaling_vs_1: scaling,
                read_p50_us: p50,
                read_p99_us: p99,
                read_p999_us: p999,
                snapshots_observed: outcome.snapshots_observed,
                snapshots_verified: outcome.snapshots_verified,
                violations: outcome.violations,
            });
        }
    }

    // ordering: pure stop signal, synchronized by the join on the next line
    stop_writer.store(true, Ordering::Relaxed);
    writer.join().expect("writer joins");
    service.flush().expect("flush after writer stop");
    let stats = service.stats();
    let shard = &stats.shards[0];
    let writer_row = WriterRow {
        updates_submitted: shard.submitted,
        updates_processed: shard.processed,
        updates_rejected: shard.rejected,
        final_version: shard.published_version,
        live_objects_end: shard.engine.live_objects,
        live_functions_end: shard.engine.live_functions,
    };
    eprintln!(
        "== writer: {} updates in {} snapshots, {} live objects at end ==",
        writer_row.updates_processed, writer_row.final_version, writer_row.live_objects_end
    );

    // --- gates --------------------------------------------------------------
    let paced_scaling = rows
        .iter()
        .find(|r| r.mode == "paced" && r.readers == 8)
        .map(|r| r.scaling_vs_1)
        .unwrap_or(0.0);
    if paced_scaling < 4.0 {
        failed = true;
        eprintln!(
            "!! paced read throughput does not scale: {paced_scaling:.2}x from 1 to 8 readers (need >= 4x)"
        );
    }
    let saturated_8 = rows
        .iter()
        .find(|r| r.mode == "saturated" && r.readers == 8)
        .map(|r| r.scaling_vs_1)
        .unwrap_or(0.0);
    if saturated_8 < 0.4 {
        failed = true;
        eprintln!(
            "!! saturated read throughput collapsed with 8 readers: {saturated_8:.2}x of 1 reader"
        );
    }
    if writer_row.updates_rejected > 0 {
        failed = true;
        eprintln!("!! writer rejected {} updates", writer_row.updates_rejected);
    }
    if writer_row.final_version < 16 {
        failed = true;
        eprintln!(
            "!! writer barely published ({} snapshots): the bench did not run under churn",
            writer_row.final_version
        );
    }

    // --- update-ack latency cell --------------------------------------------
    let update_ack = run_update_ack_cell(smoke);
    eprintln!(
        "== update-ack: {} batches of {}: p50={:.1}us p99={:.1}us p999={:.1}us ==",
        update_ack.batches,
        update_ack.batch_size,
        update_ack.ack_p50_us,
        update_ack.ack_p99_us,
        update_ack.ack_p999_us
    );

    // --- durability / recovery cell -----------------------------------------
    let recovery = run_recovery_cell(smoke);
    eprintln!(
        "== recovery: {} logged batches replayed in {:.1}ms, {} pairs, identical={} ==",
        recovery.batches_logged,
        recovery.recover_wall_ms,
        recovery.recovered_pairs,
        recovery.matches_pre_shutdown
    );
    if !recovery.matches_pre_shutdown {
        failed = true;
        eprintln!("!! recovered matching differs from the pre-shutdown matching");
    }

    // --- front-door (socket path) cell --------------------------------------
    let front_door = run_front_door_cell(smoke);
    eprintln!(
        "== front door: reads {:.0}/{:.0}/s p999={:.0}us (SLO {:.0}us) | acks {:.0}/{:.0}/s p999={:.0}us (SLO {:.0}us) | {} protocol errors, {} overload rejects ==",
        front_door.achieved_reads_per_s,
        front_door.offered_reads_per_s,
        front_door.read_p999_us,
        front_door.read_p999_slo_us,
        front_door.achieved_acks_per_s,
        front_door.offered_acks_per_s,
        front_door.ack_p999_us,
        front_door.ack_p999_slo_us,
        front_door.protocol_errors,
        front_door.overload_rejects_observed
    );
    if front_door.protocol_errors > 0 {
        failed = true;
        eprintln!(
            "!! {} front-door requests failed over the wire",
            front_door.protocol_errors
        );
    }
    if front_door.read_p999_us > front_door.read_p999_slo_us {
        failed = true;
        eprintln!(
            "!! front-door read p999 {:.0}us breaches the {:.0}us SLO",
            front_door.read_p999_us, front_door.read_p999_slo_us
        );
    }
    if front_door.ack_p999_us > front_door.ack_p999_slo_us {
        failed = true;
        eprintln!(
            "!! front-door ack p999 {:.0}us breaches the {:.0}us SLO",
            front_door.ack_p999_us, front_door.ack_p999_slo_us
        );
    }
    if front_door.achieved_reads_per_s < 0.8 * front_door.offered_reads_per_s {
        failed = true;
        eprintln!(
            "!! front door sustained only {:.0}/s of the offered {:.0}/s read rate",
            front_door.achieved_reads_per_s, front_door.offered_reads_per_s
        );
    }
    if front_door.achieved_acks_per_s < 0.8 * front_door.offered_acks_per_s {
        failed = true;
        eprintln!(
            "!! front door sustained only {:.0}/s of the offered {:.0}/s ack rate",
            front_door.achieved_acks_per_s, front_door.offered_acks_per_s
        );
    }
    if front_door.overload_rejects_observed == 0 {
        failed = true;
        eprintln!("!! the overload probe never saw a typed Overloaded reject");
    }

    let report = BenchReport {
        bench: "service".to_string(),
        scale: if smoke { "smoke" } else { "default" }.to_string(),
        created_unix_s: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        hardware_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        paced_interval_us: PACED_INTERVAL.as_micros() as u64,
        rows,
        writer: writer_row,
        update_ack,
        recovery,
        front_door,
    };
    // lint: allow(no-raw-fs) -- bench report output, not durable state
    let file = std::fs::File::create(&out).expect("create bench output file");
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), &report)
        .expect("serialize bench report");
    eprintln!("wrote {}", out.display());

    match Arc::try_unwrap(service) {
        Ok(service) => service.shutdown().expect("clean shutdown"),
        Err(_) => panic!("reader fleets must have been joined"),
    }

    if failed {
        eprintln!("FAILED: stability violation or read-throughput collapse (see log above)");
        std::process::exit(1);
    }
}

/// Canonical matching of a snapshot: sorted `(function, object, score-bits)`
/// triples, the identity recovery is gated on.
fn canonical(snap: &AssignmentSnapshot) -> Vec<(usize, u64, u64)> {
    let mut out = Vec::new();
    for f in snap.functions() {
        if let Some(assigned) = snap.assignment_of(f.id) {
            for (object, score) in assigned {
                out.push((f.id.0, object.0, score.to_bits()));
            }
        }
    }
    out.sort_unstable();
    out
}

/// The update-ack cell: a dedicated (non-durable) shard measures the full
/// producer-visible write ack — batch submit + `flush`, i.e. wait until the
/// batch is applied, re-stabilized and published — one batch at a time.
fn run_update_ack_cell(smoke: bool) -> UpdateAckRow {
    let num_batches: usize = if smoke { 80 } else { 240 };
    let functions = pref_datagen::uniform_weight_functions(NUM_FUNCTIONS, DIMS, SEED ^ 0xa0);
    let objects = ObjectDistribution::Independent.generate(NUM_OBJECTS, DIMS, SEED ^ 0xae11);
    let problem = Problem::from_parts(functions, objects).expect("generated workload is valid");
    let live_objects: Vec<RecordId> = problem.objects().iter().map(|o| o.id).collect();
    let live_functions: Vec<u64> = problem.functions().iter().map(|f| f.id.0 as u64).collect();
    let stream: Vec<UpdateOp> = update_stream(
        &UpdateStreamConfig {
            num_events: num_batches * WRITER_BATCH,
            dims: DIMS,
            distribution: ObjectDistribution::Independent,
            insert_fraction: 0.5,
            object_fraction: 0.85,
            min_objects: NUM_OBJECTS / 2,
            min_functions: NUM_FUNCTIONS / 2,
            max_capacity: 2,
            seed: SEED ^ 0xacc,
        },
        &live_objects,
        &live_functions,
    )
    .iter()
    .map(UpdateOp::from_event)
    .collect();

    let service = ShardedService::start(
        vec![problem],
        &ServiceConfig {
            queue_capacity: 512,
            max_batch: 32,
            engine: EngineOptions::default(),
            durability: None,
        },
    )
    .expect("ack-cell service starts");
    let mut nanos: Vec<u64> = Vec::with_capacity(num_batches);
    for batch in stream.chunks(WRITER_BATCH) {
        let started = Instant::now();
        service
            .submit_batch(0, batch.to_vec())
            .expect("ack-cell submit");
        service.flush().expect("ack-cell flush");
        nanos.push(started.elapsed().as_nanos() as u64);
    }
    service.shutdown().expect("ack-cell shutdown");
    nanos.sort_unstable();
    UpdateAckRow {
        batches: num_batches as u64,
        batch_size: WRITER_BATCH,
        ack_p50_us: percentile_us(&nanos, 0.50),
        ack_p99_us: percentile_us(&nanos, 0.99),
        ack_p999_us: percentile_us(&nanos, 0.999),
    }
}

/// The durability cell: run a durable shard under churn, shut it down
/// cleanly, and measure the wall time of a full recovery (checkpoint restore
/// + WAL tail replay + re-solve + first publication).
fn run_recovery_cell(smoke: bool) -> RecoveryRow {
    const CHECKPOINT_EVERY: u64 = 64;
    let num_batches = if smoke { 60 } else { 200 };
    let dir = std::env::temp_dir().join(format!("service_bench_durable_{}", std::process::id()));
    // lint: allow(no-raw-fs) -- scratch durability dir cleanup for the bench
    let _ = std::fs::remove_dir_all(&dir);

    let functions = pref_datagen::uniform_weight_functions(NUM_FUNCTIONS, DIMS, SEED ^ 0x7d);
    let objects = ObjectDistribution::Independent.generate(NUM_OBJECTS, DIMS, SEED ^ 0x7e11);
    let problem = Problem::from_parts(functions, objects).expect("generated workload is valid");
    let live_objects: Vec<RecordId> = problem.objects().iter().map(|o| o.id).collect();
    let live_functions: Vec<u64> = problem.functions().iter().map(|f| f.id.0 as u64).collect();
    let stream: Vec<UpdateOp> = update_stream(
        &UpdateStreamConfig {
            num_events: num_batches * WRITER_BATCH,
            dims: DIMS,
            distribution: ObjectDistribution::Independent,
            insert_fraction: 0.5,
            object_fraction: 0.85,
            min_objects: NUM_OBJECTS / 2,
            min_functions: NUM_FUNCTIONS / 2,
            max_capacity: 2,
            seed: SEED ^ 0xd0,
        },
        &live_objects,
        &live_functions,
    )
    .iter()
    .map(UpdateOp::from_event)
    .collect();

    let config = ServiceConfig {
        queue_capacity: 512,
        max_batch: 32,
        engine: EngineOptions::default(),
        durability: Some(DurabilityConfig {
            dir: dir.clone(),
            fsync: FsyncPolicy::Always,
            checkpoint_every: CHECKPOINT_EVERY,
        }),
    };
    let service = ShardedService::start(vec![problem], &config).expect("durable service starts");
    let mut batches_logged = 0u64;
    for batch in stream.chunks(WRITER_BATCH) {
        service
            .submit_batch(0, batch.to_vec())
            .expect("durable submit");
        batches_logged += 1;
    }
    service.flush().expect("durable flush");
    let before = canonical(&service.shard(0).expect("shard 0").latest());
    service.shutdown().expect("durable shutdown");

    let started = Instant::now();
    let recovered = ShardedService::recover(&config).expect("service recovers");
    let recover_wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let snap = recovered.shard(0).expect("shard 0").latest();
    let after = canonical(&snap);
    let row = RecoveryRow {
        batches_logged,
        checkpoint_every: CHECKPOINT_EVERY,
        recover_wall_ms,
        recovered_pairs: snap.num_pairs(),
        matches_pre_shutdown: before == after,
    };
    recovered.shutdown().expect("recovered service shutdown");
    // lint: allow(no-raw-fs) -- scratch durability dir cleanup for the bench
    let _ = std::fs::remove_dir_all(&dir);
    row
}

// --- front-door (socket path) cell ------------------------------------------

/// One open-loop generator's outcome: latencies from scheduled arrival.
struct OpenLoopOutcome {
    latencies_ns: Vec<u64>,
    completed: u64,
    errors: u64,
    wall: Duration,
}

/// xorshift64*: the harness's deterministic request-stream randomness.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    state.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

fn uniform01(state: &mut u64) -> f64 {
    (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// CDF of a Zipf(s) distribution over ranks `1..=n`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

fn zipf_tenant(cdf: &[f64], state: &mut u64) -> u64 {
    let u = uniform01(state);
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1) as u64
}

/// One open-loop reader connection: `requests` point reads at a fixed
/// arrival interval against Zipf-drawn tenants. Latency is measured from
/// the *scheduled* arrival, so time spent queued behind a slow server is in
/// the sample (no coordinated omission).
fn front_door_reader(
    addr: SocketAddr,
    seed: u64,
    cdf: Arc<Vec<f64>>,
    requests: usize,
    interval: Duration,
) -> OpenLoopOutcome {
    let mut client = NetClient::connect(addr).expect("front-door reader connects");
    let mut latencies = Vec::with_capacity(requests);
    let mut errors = 0u64;
    let mut state = seed | 1;
    let started = Instant::now();
    for i in 0..requests {
        let scheduled = interval * i as u32;
        let now = started.elapsed();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        let tenant = zipf_tenant(&cdf, &mut state);
        let function = xorshift(&mut state) % NUM_FUNCTIONS as u64;
        match client.assignment_of(tenant, function) {
            // the seed functions exist in every shard: an unknown id is a
            // routing/consistency bug, not a miss
            Ok(reply) if reply.found => {}
            Ok(_) | Err(_) => errors += 1,
        }
        latencies.push(started.elapsed().saturating_sub(scheduled).as_nanos() as u64);
    }
    OpenLoopOutcome {
        latencies_ns: latencies,
        completed: requests as u64,
        errors,
        wall: started.elapsed(),
    }
}

/// The open-loop update-ack connection: each arrival submits one batch and
/// immediately flushes — the reply is the full network-visible write ack
/// (admission + queue + apply + publish). Batches alternate between
/// inserting four fresh objects on a Zipf tenant and removing those same
/// four again, so every op is valid and the population stays bounded.
fn front_door_acker(
    addr: SocketAddr,
    seed: u64,
    cdf: Arc<Vec<f64>>,
    batches: usize,
    interval: Duration,
) -> OpenLoopOutcome {
    let mut client = NetClient::connect(addr).expect("front-door acker connects");
    let mut latencies = Vec::with_capacity(batches);
    let mut errors = 0u64;
    let mut state = seed | 1;
    let mut next_id = 10_000_000u64;
    let mut pending: Option<(u64, Vec<u64>)> = None;
    let started = Instant::now();
    for i in 0..batches {
        let scheduled = interval * i as u32;
        let now = started.elapsed();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        let (tenant, batch) = match pending.take() {
            Some((tenant, ids)) => (
                tenant,
                ids.into_iter()
                    .map(|id| UpdateOp::RemoveObject(RecordId(id)))
                    .collect::<Vec<_>>(),
            ),
            None => {
                let tenant = zipf_tenant(&cdf, &mut state);
                let ids: Vec<u64> = (0..FRONT_DOOR_ACK_BATCH as u64)
                    .map(|_| {
                        next_id += 1;
                        next_id
                    })
                    .collect();
                let batch = ids
                    .iter()
                    .map(|&id| {
                        let coords: Vec<f64> = (0..DIMS).map(|_| uniform01(&mut state)).collect();
                        UpdateOp::InsertObject(ObjectRecord::new(id, Point::from_slice(&coords)))
                    })
                    .collect::<Vec<_>>();
                pending = Some((tenant, ids));
                (tenant, batch)
            }
        };
        let ok = client.update(tenant, &batch).is_ok() && client.flush(tenant).is_ok();
        if !ok {
            errors += 1;
        }
        latencies.push(started.elapsed().saturating_sub(scheduled).as_nanos() as u64);
    }
    OpenLoopOutcome {
        latencies_ns: latencies,
        completed: batches as u64,
        errors,
        wall: started.elapsed(),
    }
}

/// The overload probe: its own one-shard server with a one-update queue and
/// a saturating producer of real engine work. Counts the typed `Overloaded`
/// rejects — the run is gated on seeing at least one, because an admission
/// path that never rejects under this load is not actually wired in.
fn front_door_overload_probe() -> u64 {
    let functions = pref_datagen::uniform_weight_functions(NUM_FUNCTIONS, DIMS, SEED ^ 0xf0);
    let objects = ObjectDistribution::Independent.generate(NUM_OBJECTS, DIMS, SEED ^ 0xf011);
    let problem = Problem::from_parts(functions, objects).expect("generated workload is valid");
    let service = ShardedService::start(
        vec![problem],
        &ServiceConfig {
            queue_capacity: 1,
            max_batch: 32,
            engine: EngineOptions::default(),
            durability: None,
        },
    )
    .expect("overload-probe service starts");
    let server =
        Server::start(service, &ServerConfig::default()).expect("overload-probe server starts");
    let mut client = NetClient::connect(server.local_addr()).expect("overload probe connects");
    let mut rejects = 0u64;
    let mut state = SEED | 1;
    'waves: for wave in 0..5_000u64 {
        let base = 1_000_000 + wave * 16;
        let batch: Vec<UpdateOp> = (0..16)
            .map(|i| {
                let coords: Vec<f64> = (0..DIMS).map(|_| uniform01(&mut state)).collect();
                UpdateOp::InsertObject(ObjectRecord::new(base + i, Point::from_slice(&coords)))
            })
            .collect();
        match client.update(7, &batch) {
            Ok(()) => {}
            Err(e) if e.is_admission_reject() => {
                rejects += 1;
                if rejects >= 8 {
                    break 'waves;
                }
            }
            Err(NetError::Remote { .. }) | Err(_) => break 'waves,
        }
    }
    // drain and verify the shard stayed healthy through the rejects
    client.flush(7).expect("overload probe flush");
    server
        .stop()
        .expect("overload-probe server stops")
        .shutdown()
        .expect("overload-probe service shutdown");
    rejects
}

/// The front-door cell: a 4-shard service behind a real TCP server, driven
/// by open-loop reader connections plus an update-ack connection, then the
/// overload probe.
fn run_front_door_cell(smoke: bool) -> FrontDoorRow {
    let shards = 4usize;
    let problems: Vec<Problem> = (0..shards as u64)
        .map(|s| {
            let functions =
                pref_datagen::uniform_weight_functions(NUM_FUNCTIONS, DIMS, SEED ^ (0xfd00 + s));
            let objects =
                ObjectDistribution::Independent.generate(NUM_OBJECTS, DIMS, SEED ^ (0xfd11 + s));
            Problem::from_parts(functions, objects).expect("generated workload is valid")
        })
        .collect();
    let service = ShardedService::start(
        problems,
        &ServiceConfig {
            queue_capacity: 4096,
            max_batch: 64,
            engine: EngineOptions::default(),
            durability: None,
        },
    )
    .expect("front-door service starts");
    let server = Server::start(
        service,
        &ServerConfig {
            // the main cell measures latency under *admitted* load: the
            // bucket is sized far above the offered rate (the overload
            // probe is where rejection is exercised)
            admission: TokenBucketConfig {
                rate_per_sec: 1_000_000,
                burst: 1_000_000,
                slots: 1024,
            },
            ..ServerConfig::default()
        },
    )
    .expect("front-door server starts");
    let addr = server.local_addr();
    let window_s = if smoke { 1.0 } else { 2.5 };
    let reads_per_conn = (window_s / FRONT_DOOR_READ_INTERVAL.as_secs_f64()) as usize;
    let ack_batches = (window_s / FRONT_DOOR_ACK_INTERVAL.as_secs_f64()) as usize;
    let cdf = Arc::new(zipf_cdf(FRONT_DOOR_TENANTS, FRONT_DOOR_ZIPF_S));

    let readers: Vec<_> = (0..FRONT_DOOR_READ_CONNS)
        .map(|conn| {
            let cdf = Arc::clone(&cdf);
            std::thread::Builder::new()
                .name(format!("front-door-reader-{conn}"))
                .spawn(move || {
                    front_door_reader(
                        addr,
                        SEED ^ (conn as u64),
                        cdf,
                        reads_per_conn,
                        FRONT_DOOR_READ_INTERVAL,
                    )
                })
                .expect("spawn front-door reader")
        })
        .collect();
    let acker = {
        let cdf = Arc::clone(&cdf);
        std::thread::Builder::new()
            .name("front-door-acker".into())
            .spawn(move || {
                front_door_acker(
                    addr,
                    SEED ^ 0xacce5,
                    cdf,
                    ack_batches,
                    FRONT_DOOR_ACK_INTERVAL,
                )
            })
            .expect("spawn front-door acker")
    };

    let mut read_latencies: Vec<u64> = Vec::new();
    let mut reads_completed = 0u64;
    let mut protocol_errors = 0u64;
    let mut read_wall = Duration::ZERO;
    for handle in readers {
        let outcome = handle.join().expect("front-door reader joins");
        read_latencies.extend(outcome.latencies_ns);
        reads_completed += outcome.completed;
        protocol_errors += outcome.errors;
        read_wall = read_wall.max(outcome.wall);
    }
    read_latencies.sort_unstable();
    let ack_outcome = acker.join().expect("front-door acker joins");
    protocol_errors += ack_outcome.errors;
    let mut ack_latencies = ack_outcome.latencies_ns;
    ack_latencies.sort_unstable();

    let overload_rejects_observed = front_door_overload_probe();
    server
        .stop()
        .expect("front-door server stops")
        .shutdown()
        .expect("front-door service shutdown");

    FrontDoorRow {
        shards,
        read_connections: FRONT_DOOR_READ_CONNS,
        tenants: FRONT_DOOR_TENANTS,
        zipf_s: FRONT_DOOR_ZIPF_S,
        window_s,
        offered_reads_per_s: FRONT_DOOR_READ_CONNS as f64 / FRONT_DOOR_READ_INTERVAL.as_secs_f64(),
        achieved_reads_per_s: reads_completed as f64 / read_wall.as_secs_f64().max(1e-9),
        read_p50_us: percentile_us(&read_latencies, 0.50),
        read_p99_us: percentile_us(&read_latencies, 0.99),
        read_p999_us: percentile_us(&read_latencies, 0.999),
        read_p999_slo_us: FRONT_DOOR_READ_P999_SLO_US,
        ack_batch_size: FRONT_DOOR_ACK_BATCH,
        offered_acks_per_s: 1.0 / FRONT_DOOR_ACK_INTERVAL.as_secs_f64(),
        achieved_acks_per_s: ack_outcome.completed as f64
            / ack_outcome.wall.as_secs_f64().max(1e-9),
        ack_p50_us: percentile_us(&ack_latencies, 0.50),
        ack_p99_us: percentile_us(&ack_latencies, 0.99),
        ack_p999_us: percentile_us(&ack_latencies, 0.999),
        ack_p999_slo_us: FRONT_DOOR_ACK_P999_SLO_US,
        protocol_errors,
        overload_rejects_observed,
    }
}

/// Runs one reader fleet for `window`, returning the aggregate counters.
fn run_fleet(
    service: &Arc<ShardedService>,
    readers: usize,
    window: Duration,
    paced: bool,
) -> FleetOutcome {
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let observed = Arc::new(AtomicU64::new(0));
    let verified = Arc::new(AtomicU64::new(0));
    let violations = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..readers)
        .map(|r| {
            let service = Arc::clone(service);
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            let observed = Arc::clone(&observed);
            let verified = Arc::clone(&verified);
            let violations = Arc::clone(&violations);
            std::thread::Builder::new()
                .name(format!("bench-reader-{r}"))
                .spawn(move || {
                    let mut reader = service.reader();
                    let mut last_version = 0u64;
                    let mut my_reads = 0u64;
                    let mut my_verified = 0u64;
                    let mut my_latencies: Vec<u64> = Vec::new();
                    let mut next = Instant::now();
                    let mut probe = r as u64; // deterministic per-reader walk
                                              // ordering: pure stop signal; counters are synchronized
                                              // by the joins at the end of the fleet run
                    while !stop.load(Ordering::Relaxed) {
                        let request_started = Instant::now();
                        let snapshot = reader.snapshot(0).expect("shard 0 exists");
                        let pin_elapsed = request_started.elapsed();
                        let version = snapshot.version();
                        if version < last_version {
                            violations.fetch_add(1, Ordering::Relaxed); // ordering: statistics tally
                        }
                        if version > last_version {
                            last_version = version;
                            observed.fetch_add(1, Ordering::Relaxed); // ordering: statistics tally
                                                                      // re-verify a sample of the newly published
                                                                      // snapshots end-to-end (quadratic, so capped)
                            if my_verified < 64 || version.is_multiple_of(8) {
                                if snapshot.verify().is_err() {
                                    violations.fetch_add(1, Ordering::Relaxed); // ordering: statistics tally
                                }
                                my_verified += 1;
                            }
                        }
                        // the read itself: one function-side and one
                        // object-side point lookup on the pinned snapshot
                        // (timed as pin + lookups; the sampled quadratic
                        // re-verification above is bench instrumentation,
                        // not request work, and stays out of the sample)
                        let lookup_started = Instant::now();
                        let functions = snapshot.functions();
                        if !functions.is_empty() {
                            let f = functions[(probe % functions.len() as u64) as usize].id;
                            if let Some(mut pairs) = snapshot.assignment_of(f) {
                                if let Some((object, _score)) = pairs.next() {
                                    let back = snapshot
                                        .functions_of(object)
                                        .map(|mut it| it.any(|(bf, _)| bf == f))
                                        .unwrap_or(false);
                                    if !back {
                                        // ordering: statistics tally
                                        violations.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            } else {
                                // live function missing from its own snapshot
                                violations.fetch_add(1, Ordering::Relaxed); // ordering: statistics tally
                            }
                        }
                        probe = probe.wrapping_add(0x9e37_79b9);
                        my_reads += 1;
                        my_latencies
                            .push((pin_elapsed + lookup_started.elapsed()).as_nanos() as u64);
                        if paced {
                            next += PACED_INTERVAL;
                            let now = Instant::now();
                            if next > now {
                                std::thread::sleep(next - now);
                            } else {
                                // overloaded: don't accumulate debt
                                next = now;
                            }
                        }
                    }
                    reads.fetch_add(my_reads, Ordering::Relaxed); // ordering: statistics tally
                    verified.fetch_add(my_verified, Ordering::Relaxed); // ordering: statistics tally
                    my_latencies
                })
                .expect("spawn reader")
        })
        .collect();
    std::thread::sleep(window);
    // ordering: pure stop signal, synchronized by the joins below
    stop.store(true, Ordering::Relaxed);
    let mut latencies_ns: Vec<u64> = Vec::new();
    for handle in handles {
        latencies_ns.extend(handle.join().expect("reader joins"));
    }
    latencies_ns.sort_unstable();
    FleetOutcome {
        total_reads: reads.load(Ordering::Relaxed), // ordering: tally read after join
        snapshots_observed: observed.load(Ordering::Relaxed), // ordering: tally read after join
        snapshots_verified: verified.load(Ordering::Relaxed), // ordering: tally read after join
        violations: violations.load(Ordering::Relaxed), // ordering: tally read after join
        latencies_ns,
    }
}
