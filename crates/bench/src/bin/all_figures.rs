//! Runs every figure experiment in sequence and writes all JSON reports.
use pref_bench::{experiments, CliOptions};

fn main() {
    let cli = CliOptions::from_args();
    for name in [
        "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
        "omega",
    ] {
        eprintln!("=== running {name} ({}) ===", cli.scale.label());
        let report = experiments::by_name(name, cli.scale).expect("known experiment");
        report.print();
        match report.write_json(&cli.output_dir, name) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(err) => eprintln!("could not write JSON results: {err}"),
        }
    }
}
