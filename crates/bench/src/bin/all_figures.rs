//! Runs every figure experiment and writes all JSON reports.
//!
//! With `--jobs N` the experiments are distributed over `N` worker threads
//! (each experiment is self-contained: it generates its own workloads and
//! trees). Every report's JSON is written the moment its experiment
//! completes — an interrupted sweep keeps the figures finished so far — while
//! the measurement tables are printed in the canonical figure order, so
//! stdout is identical to a sequential run.

#![forbid(unsafe_code)]

use pref_bench::{experiments, CliOptions, Report, Scale};
use std::path::Path;
use std::sync::Mutex;

const FIGURES: [&str; 11] = [
    "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
    "omega",
];

fn main() {
    let cli = CliOptions::from_args();
    let reports = if cli.jobs <= 1 {
        FIGURES
            .iter()
            .map(|name| {
                eprintln!("=== running {name} ({}) ===", cli.scale.label());
                run_and_write(name, cli.scale, &cli.output_dir)
            })
            .collect()
    } else {
        run_parallel(cli.scale, cli.jobs, &cli.output_dir)
    };
    for report in reports {
        report.print();
    }
}

/// Runs one experiment and immediately persists its JSON, so partial sweeps
/// keep their completed figures.
fn run_and_write(name: &str, scale: Scale, output_dir: &Path) -> Report {
    let report = experiments::by_name(name, scale).expect("known experiment");
    match report.write_json(output_dir, name) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write JSON results: {err}"),
    }
    report
}

/// Work-stealing fan-out over `jobs` std::thread workers: a shared cursor
/// hands out figure indices, results land in their canonical slots.
fn run_parallel(scale: Scale, jobs: usize, output_dir: &Path) -> Vec<Report> {
    let cursor = Mutex::new(0usize);
    let slots: Vec<Mutex<Option<Report>>> = FIGURES.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(FIGURES.len()) {
            scope.spawn(|| loop {
                let idx = {
                    let mut cursor = cursor.lock().expect("cursor lock");
                    let idx = *cursor;
                    *cursor += 1;
                    idx
                };
                let Some(name) = FIGURES.get(idx) else {
                    break;
                };
                eprintln!("=== running {name} ({}) ===", scale.label());
                let report = run_and_write(name, scale, output_dir);
                *slots[idx].lock().expect("slot lock") = Some(report);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every figure ran")
        })
        .collect()
}
