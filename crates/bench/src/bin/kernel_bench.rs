//! kernel_bench — the columnar scoring kernels' standing microbench gate.
//!
//! Runs the scalar-vs-kernel sweep of `pref_bench::kernel_perf` over every
//! specialized dimensionality (1..=8) plus the generic fallback, and fails
//! the process if any of the kernels' three contracts is broken:
//!
//! * **bit-identity** — block scores equal scalar scores bit for bit in
//!   every cell;
//! * **zero allocation** — the steady-state scoring loop never reallocates
//!   its caller-owned scratch or the block lanes (pointer/capacity pinning;
//!   see `kernel_perf` for why this needs no instrumented allocator);
//! * **speedup** — the columnar path must beat the scalar AoS path by ≥ 2×
//!   on the geometric mean across the sweep (single-threaded: this measures
//!   the SoA layout + autovectorization alone, not the worker pool).
//!
//! Usage: `kernel_bench [--smoke] [--repeats <n>] [--out <path>]`. The JSON
//! report is only written when `--out` is given — the canonical kernel cells
//! live in `BENCH_solver.json` (written by `solver_bench`); this binary is
//! the fast CI gate.

#![forbid(unsafe_code)]

use pref_bench::kernel_perf::{run_kernel_cells, KernelCell};
use serde::Serialize;
use std::path::PathBuf;

const SEED: u64 = 20_090_824;
/// The speedup gate: columnar scoring must at least double the scalar
/// throughput on the geometric mean over the dimensionality sweep.
const SPEEDUP_GATE: f64 = 2.0;

#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    bench: String,
    scale: String,
    repeats: usize,
    created_unix_s: u64,
    geomean_speedup: f64,
    cells: Vec<KernelCell>,
}

fn main() {
    let mut smoke = false;
    let mut repeats = 7usize;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--repeats" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => repeats = n,
                None => {
                    eprintln!("--repeats requires a count; try --help");
                    std::process::exit(2);
                }
            },
            "--out" => match args.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--out requires a path; try --help");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: kernel_bench [--smoke] [--repeats <n>] [--out <path>]");
                return;
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    let (num_functions, num_points) = if smoke { (32, 4_096) } else { (64, 16_384) };

    let cells = run_kernel_cells(num_functions, num_points, repeats, SEED);
    let mut failed = false;
    for cell in &cells {
        eprintln!(
            "== D={:<2} |F|={} n={}: scalar {:>8.1} Melem/s | kernel {:>8.1} Melem/s | x{:.2} | bits={} alloc-free={} ==",
            cell.dims,
            cell.num_functions,
            cell.num_points,
            cell.scalar_melems_per_s,
            cell.kernel_melems_per_s,
            cell.speedup,
            cell.bit_identical,
            cell.zero_alloc
        );
        if !cell.bit_identical {
            failed = true;
            eprintln!(
                "!! D={}: block scores diverge from scalar scores",
                cell.dims
            );
        }
        if !cell.zero_alloc {
            failed = true;
            eprintln!("!! D={}: steady-state scoring loop reallocated", cell.dims);
        }
    }
    let geomean = (cells.iter().map(|c| c.speedup.ln()).sum::<f64>() / cells.len() as f64).exp();
    eprintln!("== geometric-mean speedup x{geomean:.2} (gate >= x{SPEEDUP_GATE:.1}) ==");
    if geomean < SPEEDUP_GATE {
        failed = true;
        eprintln!(
            "!! columnar kernels only reached x{geomean:.2} over scalar (need >= x{SPEEDUP_GATE:.1})"
        );
    }

    if let Some(out) = out {
        let report = BenchReport {
            bench: "kernel".to_string(),
            scale: if smoke { "smoke" } else { "default" }.to_string(),
            repeats,
            created_unix_s: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            geomean_speedup: geomean,
            cells,
        };
        // lint: allow(no-raw-fs) -- bench report output, not durable state
        let file = std::fs::File::create(&out).expect("create bench output file");
        serde_json::to_writer_pretty(std::io::BufWriter::new(file), &report)
            .expect("serialize bench report");
        eprintln!("wrote {}", out.display());
    }

    if failed {
        eprintln!("FAILED: kernel contract violation (see log above)");
        std::process::exit(1);
    }
}
