//! Workload parameters (Table 2 of the paper) at three scales.

use pref_datagen::ObjectDistribution;

/// Workload scale for the experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-figure smoke scale (used by CI and the integration tests).
    Quick,
    /// Minutes-per-figure laptop scale; the scale used to fill EXPERIMENTS.md.
    Default,
    /// The paper's original parameter values (|O| up to 400k, |F| up to 20k).
    Paper,
}

impl Scale {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Default => "default",
            Scale::Paper => "paper",
        }
    }

    /// Default function-set cardinality |F| (Table 2 default: 5,000).
    pub fn default_functions(self) -> usize {
        match self {
            Scale::Quick => 200,
            Scale::Default => 1_000,
            Scale::Paper => 5_000,
        }
    }

    /// Default object-set cardinality |O| (Table 2 default: 100,000).
    pub fn default_objects(self) -> usize {
        match self {
            Scale::Quick => 3_000,
            Scale::Default => 20_000,
            Scale::Paper => 100_000,
        }
    }

    /// Sweep values for the dimensionality experiment (Table 2: 3–6).
    pub fn dims_sweep(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![3, 4],
            Scale::Default => vec![3, 4, 5, 6],
            Scale::Paper => vec![3, 4, 5, 6],
        }
    }

    /// Sweep values for |F| (Table 2: 1k, 2.5k, 5k, 10k, 20k).
    pub fn functions_sweep(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![100, 200, 400],
            Scale::Default => vec![250, 500, 1_000, 2_000, 4_000],
            Scale::Paper => vec![1_000, 2_500, 5_000, 10_000, 20_000],
        }
    }

    /// Sweep values for |O| (Table 2: 10k, 50k, 100k, 200k, 400k).
    pub fn objects_sweep(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![1_000, 2_000, 4_000],
            Scale::Default => vec![5_000, 10_000, 20_000, 40_000, 80_000],
            Scale::Paper => vec![10_000, 50_000, 100_000, 200_000, 400_000],
        }
    }

    /// Sweep values for capacities (Table 2: 1, 2, 4, 8, 16).
    pub fn capacity_sweep(self) -> Vec<u32> {
        match self {
            Scale::Quick => vec![2, 4],
            _ => vec![2, 4, 8, 16],
        }
    }

    /// Sweep values for the maximum priority γ (Table 2: 1–16).
    pub fn priority_sweep(self) -> Vec<u32> {
        match self {
            Scale::Quick => vec![2, 4],
            _ => vec![2, 4, 8, 16],
        }
    }

    /// Sweep values for the LRU buffer fraction (Table 2: 0%–10%).
    pub fn buffer_sweep(self) -> Vec<f64> {
        vec![0.0, 0.01, 0.02, 0.05, 0.10]
    }

    /// Sweep values for the number of weight clusters (Figure 12: 1–9).
    pub fn cluster_sweep(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![1, 5, 9],
            _ => vec![1, 3, 5, 7, 9],
        }
    }
}

/// One workload configuration: everything needed to generate a problem
/// instance deterministically.
#[derive(Debug, Clone)]
pub struct Params {
    /// Number of preference functions |F|.
    pub num_functions: usize,
    /// Number of objects |O|.
    pub num_objects: usize,
    /// Dimensionality D.
    pub dims: usize,
    /// Object distribution.
    pub distribution: ObjectDistribution,
    /// LRU buffer size as a fraction of the object R-tree (default 2%).
    pub buffer_fraction: f64,
    /// Capacity of every function (1 = plain assignment).
    pub function_capacity: u32,
    /// Capacity of every object (1 = plain assignment).
    pub object_capacity: u32,
    /// Maximum priority γ; 1 disables priorities.
    pub max_priority: u32,
    /// If set, function weights are clustered around this many centers
    /// (Gaussian, σ = 0.05); otherwise they are drawn independently.
    pub weight_clusters: Option<usize>,
    /// Ω as a fraction of |F| for SB's resumable search (paper: 2.5%).
    pub omega_fraction: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Params {
    /// The Table 2 default configuration at a given scale: anti-correlated
    /// objects, D = 4, unit capacities, no priorities, 2% buffer.
    pub fn defaults(scale: Scale) -> Self {
        Self {
            num_functions: scale.default_functions(),
            num_objects: scale.default_objects(),
            dims: 4,
            distribution: ObjectDistribution::AntiCorrelated,
            buffer_fraction: 0.02,
            function_capacity: 1,
            object_capacity: 1,
            max_priority: 1,
            weight_clusters: None,
            omega_fraction: 0.025,
            seed: 0x5eed_2009,
        }
    }

    /// The dimensionality the generated workload will actually have: the
    /// real-data stand-ins (Zillow-like, NBA-like) are inherently
    /// 5-dimensional and override [`Params::dims`]. Workload construction and
    /// reporting both go through this accessor, so figure output is labeled
    /// with the dimensionality that was really used.
    pub fn effective_dims(&self) -> usize {
        match self.distribution {
            ObjectDistribution::ZillowLike | ObjectDistribution::NbaLike => 5,
            _ => self.dims,
        }
    }

    /// Validates the workload parameters, returning a description of the
    /// first problem found. Today this guards `buffer_fraction`: a negative
    /// value used to silently disable the LRU buffer and a value above 1
    /// silently made the buffer larger than the tree — both mis-shaping the
    /// I/O measurements of every figure downstream.
    pub fn validate(&self) -> Result<(), String> {
        if !self.buffer_fraction.is_finite() || !(0.0..=1.0).contains(&self.buffer_fraction) {
            return Err(format!(
                "buffer_fraction must lie in [0, 1], got {}",
                self.buffer_fraction
            ));
        }
        Ok(())
    }

    /// A short description of the non-default parameters, for table headers.
    /// Reports the *effective* dimensionality (and flags when the real-data
    /// stand-ins overrode the configured one).
    pub fn describe(&self) -> String {
        let effective = self.effective_dims();
        let dims = if effective == self.dims {
            format!("{effective}")
        } else {
            format!("{effective} (fixed by {})", self.distribution.label())
        };
        format!(
            "|F|={} |O|={} D={} dist={} buffer={:.0}% fcap={} ocap={} gamma={}",
            self.num_functions,
            self.num_objects,
            dims,
            self.distribution.label(),
            self.buffer_fraction * 100.0,
            self.function_capacity,
            self.object_capacity,
            self.max_priority
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_table2_shape() {
        let p = Params::defaults(Scale::Paper);
        assert_eq!(p.num_functions, 5_000);
        assert_eq!(p.num_objects, 100_000);
        assert_eq!(p.dims, 4);
        assert_eq!(p.distribution, ObjectDistribution::AntiCorrelated);
        assert!((p.buffer_fraction - 0.02).abs() < 1e-12);
        assert_eq!(p.function_capacity, 1);
        assert_eq!(p.max_priority, 1);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Quick.default_objects() < Scale::Default.default_objects());
        assert!(Scale::Default.default_objects() < Scale::Paper.default_objects());
        assert_eq!(
            Scale::Paper.functions_sweep(),
            vec![1_000, 2_500, 5_000, 10_000, 20_000]
        );
        assert_eq!(Scale::Paper.objects_sweep().last(), Some(&400_000));
        assert_eq!(Scale::Quick.label(), "quick");
    }

    #[test]
    fn describe_mentions_key_parameters() {
        let p = Params::defaults(Scale::Quick);
        let d = p.describe();
        assert!(d.contains("|F|=200"));
        assert!(d.contains("anti-correlated"));
        assert!(d.contains("D=4"));
    }

    #[test]
    fn describe_reports_the_effective_dimensionality() {
        let mut p = Params::defaults(Scale::Quick);
        p.dims = 3;
        assert_eq!(p.effective_dims(), 3);
        p.distribution = ObjectDistribution::NbaLike;
        assert_eq!(p.effective_dims(), 5);
        let d = p.describe();
        assert!(
            d.contains("D=5 (fixed by nba-like)"),
            "describe must expose the override: {d}"
        );
        assert!(!d.contains("D=3"));
        p.distribution = ObjectDistribution::ZillowLike;
        assert_eq!(p.effective_dims(), 5);
        // when the configured dims already match, no override flag is shown
        p.dims = 5;
        assert!(p.describe().contains("D=5 "));
        assert!(!p.describe().contains("fixed by"));
    }
}
