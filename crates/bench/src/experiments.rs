//! One function per figure of the paper's evaluation (Section 7).
//!
//! Each function sweeps the same parameter as the corresponding figure, runs
//! the same competitor set and returns a [`Report`] with one row per
//! (algorithm, sweep value). The `fig08` … `fig17` binaries are thin wrappers
//! around these functions.

use crate::algorithms::AlgorithmKind;
use crate::params::{Params, Scale};
use crate::report::Report;
use crate::runner::run_cell;
use pref_datagen::ObjectDistribution;

/// Figure 8: effectiveness of the SB optimizations (SB vs SB-UpdateSkyline vs
/// SB-DeltaSky), I/O and CPU versus dimensionality on anti-correlated data
/// with |F| = 1000.
pub fn fig08(scale: Scale) -> Report {
    let mut params = Params::defaults(scale);
    params.num_functions = match scale {
        Scale::Quick => 100,
        Scale::Default => 500,
        Scale::Paper => 1_000,
    };
    // DeltaSky is too slow for high D (as in the paper, which stops at D=5)
    let dims: Vec<usize> = scale.dims_sweep().into_iter().filter(|&d| d <= 5).collect();
    let mut report = Report::new(
        "Figure 8: effect of the optimization techniques",
        params.describe(),
    );
    for &d in &dims {
        let mut p = params.clone();
        p.dims = d;
        for algo in AlgorithmKind::ablation_set() {
            report.push(run_cell("fig08", &format!("D={d}"), &p, algo));
        }
    }
    report
}

/// Figure 9: effect of dimensionality on I/O, CPU and memory for the three
/// competitors, over all three synthetic distributions.
pub fn fig09(scale: Scale) -> Report {
    let params = Params::defaults(scale);
    let mut report = Report::new("Figure 9: effect of dimensionality D", params.describe());
    for dist in [
        ObjectDistribution::Independent,
        ObjectDistribution::Correlated,
        ObjectDistribution::AntiCorrelated,
    ] {
        for &d in &scale.dims_sweep() {
            let mut p = params.clone();
            p.dims = d;
            p.distribution = dist;
            for algo in AlgorithmKind::standard_set() {
                report.push(run_cell(
                    &format!("fig09-{}", dist.label()),
                    &format!("D={d}"),
                    &p,
                    algo,
                ));
            }
        }
    }
    report
}

/// Figure 10: effect of the function cardinality |F| (anti-correlated).
pub fn fig10(scale: Scale) -> Report {
    let params = Params::defaults(scale);
    let mut report = Report::new(
        "Figure 10: effect of function cardinality |F|",
        params.describe(),
    );
    for &nf in &scale.functions_sweep() {
        let mut p = params.clone();
        p.num_functions = nf;
        for algo in AlgorithmKind::standard_set() {
            report.push(run_cell("fig10", &format!("|F|={nf}"), &p, algo));
        }
    }
    report
}

/// Figure 11: effect of the object cardinality |O| (anti-correlated).
pub fn fig11(scale: Scale) -> Report {
    let params = Params::defaults(scale);
    let mut report = Report::new(
        "Figure 11: effect of object cardinality |O|",
        params.describe(),
    );
    for &no in &scale.objects_sweep() {
        let mut p = params.clone();
        p.num_objects = no;
        for algo in AlgorithmKind::standard_set() {
            report.push(run_cell("fig11", &format!("|O|={no}"), &p, algo));
        }
    }
    report
}

/// Figure 12: effect of the preference-weight distribution (C Gaussian
/// clusters, σ = 0.05), anti-correlated objects, D = 4.
pub fn fig12(scale: Scale) -> Report {
    let params = Params::defaults(scale);
    let mut report = Report::new(
        "Figure 12: effect of the function distribution",
        params.describe(),
    );
    for &c in &scale.cluster_sweep() {
        let mut p = params.clone();
        p.dims = 4;
        p.weight_clusters = Some(c);
        for algo in AlgorithmKind::standard_set() {
            report.push(run_cell("fig12", &format!("C={c}"), &p, algo));
        }
    }
    report
}

/// Figure 13: effect of the LRU buffer size (0%–10% of the tree).
pub fn fig13(scale: Scale) -> Report {
    let params = Params::defaults(scale);
    let mut report = Report::new("Figure 13: effect of the buffer size", params.describe());
    for &frac in &scale.buffer_sweep() {
        let mut p = params.clone();
        p.buffer_fraction = frac;
        for algo in AlgorithmKind::standard_set() {
            report.push(run_cell(
                "fig13",
                &format!("buffer={}%", (frac * 100.0).round()),
                &p,
                algo,
            ));
        }
    }
    report
}

/// Figure 14: capacitated assignment — (a, b) function capacities, (c, d)
/// object capacities.
pub fn fig14(scale: Scale) -> Report {
    let params = Params::defaults(scale);
    let mut report = Report::new(
        "Figure 14: effect of function/object capacities",
        params.describe(),
    );
    for &k in &scale.capacity_sweep() {
        let mut p = params.clone();
        p.function_capacity = k;
        for algo in AlgorithmKind::standard_set() {
            report.push(run_cell(
                "fig14-function-capacity",
                &format!("k={k}"),
                &p,
                algo,
            ));
        }
    }
    for &k in &scale.capacity_sweep() {
        let mut p = params.clone();
        p.object_capacity = k;
        for algo in AlgorithmKind::standard_set() {
            report.push(run_cell(
                "fig14-object-capacity",
                &format!("k={k}"),
                &p,
                algo,
            ));
        }
    }
    report
}

/// Figure 15: prioritized preference queries (priorities drawn from [1..γ]),
/// including the two-skyline SB variant.
pub fn fig15(scale: Scale) -> Report {
    let params = Params::defaults(scale);
    let mut report = Report::new(
        "Figure 15: effect of function priorities",
        params.describe(),
    );
    let mut algos = AlgorithmKind::standard_set();
    algos.push(AlgorithmKind::SbTwoSkylines);
    for &gamma in &scale.priority_sweep() {
        let mut p = params.clone();
        p.max_priority = gamma;
        for algo in algos.clone() {
            report.push(run_cell("fig15", &format!("gamma={gamma}"), &p, algo));
        }
    }
    report
}

/// Figure 16: real-data stand-ins — (a, b) Zillow-like objects with varying
/// |O|, (c, d) NBA-like objects with capacitated functions.
pub fn fig16(scale: Scale) -> Report {
    let params = Params::defaults(scale);
    // the setup line must describe the workloads the cells actually run —
    // the real-data stand-ins force D=5 regardless of the configured dims
    let zillow_setup = {
        let mut p = params.clone();
        p.distribution = ObjectDistribution::ZillowLike;
        p.describe()
    };
    let mut report = Report::new(
        "Figure 16: real datasets (synthetic stand-ins)",
        zillow_setup,
    );
    for &no in &scale.objects_sweep() {
        let mut p = params.clone();
        p.distribution = ObjectDistribution::ZillowLike;
        p.num_objects = no;
        for algo in AlgorithmKind::standard_set() {
            report.push(run_cell("fig16-zillow", &format!("|O|={no}"), &p, algo));
        }
    }
    let nba_objects = match scale {
        Scale::Quick => 3_000,
        _ => pref_datagen::NBA_SIZE,
    };
    let nba_functions = match scale {
        Scale::Quick => 200,
        _ => 1_000,
    };
    for &k in &[1u32, 5, 9, 12] {
        if scale == Scale::Quick && k > 5 {
            continue;
        }
        let mut p = params.clone();
        p.distribution = ObjectDistribution::NbaLike;
        p.num_objects = nba_objects;
        p.num_functions = nba_functions;
        p.function_capacity = k;
        for algo in AlgorithmKind::standard_set() {
            report.push(run_cell("fig16-nba", &format!("k={k}"), &p, algo));
        }
    }
    report
}

/// Figure 17: disk-resident function sets — the cardinalities of |F| and |O|
/// are swapped and SB-alt (batch best-pair search) joins the competitor set.
pub fn fig17(scale: Scale) -> Report {
    let base = Params::defaults(scale);
    let mut report = Report::new(
        "Figure 17: disk-resident functions (|F| and |O| swapped)",
        base.describe(),
    );
    for dist in [
        ObjectDistribution::Independent,
        ObjectDistribution::AntiCorrelated,
    ] {
        for &d in &scale.dims_sweep() {
            let mut p = base.clone();
            // swap the cardinalities as in Section 7.6
            p.num_functions = base.num_objects;
            p.num_objects = base.num_functions;
            p.dims = d;
            p.distribution = dist;
            let list_buffer = ((p.num_functions as f64) * 0.02 / 256.0).ceil() as usize;
            let mut algos = AlgorithmKind::standard_set();
            algos.push(AlgorithmKind::SbAlt {
                list_buffer_frames: list_buffer.max(1),
            });
            for algo in algos {
                report.push(run_cell(
                    &format!("fig17-{}", dist.label()),
                    &format!("D={d}"),
                    &p,
                    algo,
                ));
            }
        }
    }
    report
}

/// Ablation: the Ω (candidate-queue capacity) trade-off of the resumable
/// reverse top-1 search (Section 5.1). Not a paper figure, but one of the
/// design choices DESIGN.md calls out.
pub fn ablation_omega(scale: Scale) -> Report {
    let params = Params::defaults(scale);
    let mut report = Report::new(
        "Ablation: Omega fraction of the resumable TA search",
        params.describe(),
    );
    for omega in [0.005, 0.025, 0.1, 1.0] {
        let mut p = params.clone();
        p.omega_fraction = omega;
        report.push(run_cell(
            "ablation-omega",
            &format!("omega={omega}"),
            &p,
            AlgorithmKind::Sb,
        ));
    }
    report
}

/// Runs a named experiment ("fig08" … "fig17", "omega").
pub fn by_name(name: &str, scale: Scale) -> Option<Report> {
    Some(match name {
        "fig08" => fig08(scale),
        "fig09" => fig09(scale),
        "fig10" => fig10(scale),
        "fig11" => fig11(scale),
        "fig12" => fig12(scale),
        "fig13" => fig13(scale),
        "fig14" => fig14(scale),
        "fig15" => fig15(scale),
        "fig16" => fig16(scale),
        "fig17" => fig17(scale),
        "omega" => ablation_omega(scale),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline claim of the paper, checked end-to-end at quick scale:
    /// SB beats Brute Force and Chain on I/O by a wide margin.
    #[test]
    fn quick_fig09_shape_holds() {
        let report = fig09(Scale::Quick);
        for x in report.xs() {
            for exp in ["fig09-independent", "fig09-anti-correlated"] {
                let sb = report.get(exp, "SB", &x);
                let bf = report.get(exp, "Brute Force", &x);
                let (Some(sb), Some(bf)) = (sb, bf) else {
                    continue;
                };
                // compare the paper's headline metric — object R-tree accesses
                // — since SB's aux_io now charges its sorted-list accesses
                assert!(
                    sb.io * 5 < bf.io,
                    "{exp} {x}: SB {} vs Brute Force {}",
                    sb.io,
                    bf.io
                );
                assert_eq!(sb.pairs, bf.pairs);
            }
        }
    }

    #[test]
    fn quick_fig08_update_skyline_beats_deltasky() {
        let report = fig08(Scale::Quick);
        for x in report.xs() {
            let upd = report.get("fig08", "SB-UpdateSkyline", &x).unwrap();
            let delta = report.get("fig08", "SB-DeltaSky", &x).unwrap();
            assert!(
                upd.total_io() < delta.total_io(),
                "{x}: UpdateSkyline {} vs DeltaSky {}",
                upd.total_io(),
                delta.total_io()
            );
        }
    }

    #[test]
    fn by_name_covers_every_figure() {
        for name in ["fig08", "fig10", "fig12", "fig13", "omega"] {
            assert!(by_name(name, Scale::Quick).is_some(), "{name}");
        }
        assert!(by_name("nope", Scale::Quick).is_none());
    }
}
