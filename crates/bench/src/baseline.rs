//! The pre-refactor SB implementation, kept as a measured perf baseline.
//!
//! This is the fully optimized SB variant (UpdateSkyline maintenance,
//! resumable TA best-pair search, multiple pairs per loop) exactly as it stood
//! before the solver core was rebuilt on dense-ID state: per-object state
//! lives in `HashMap<RecordId, _>` / `HashSet<RecordId>` keyed by external
//! record ids, and every loop re-clones the whole skyline point set. The
//! `solver_bench` binary runs it side by side with the dense rewrite so the
//! repo's perf trajectory (`BENCH_solver.json`) records what the refactor
//! bought. It is **not** part of the measured competitor set — use
//! [`pref_assign::sb`] for real work.

use pref_assign::{Assignment, AssignmentResult, Problem, RunMetrics};
use pref_geom::Point;
use pref_rtree::{RTree, RecordId};
use pref_skyline::{compute_skyline_bbs, update_skyline, Skyline};
use pref_storage::PeakTracker;
use pref_topk::{FunctionLists, ReverseTopOne};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Runs the hash-map-based SB of the pre-refactor solver core. `omega_fraction`
/// is the paper's ω (the candidate-queue capacity as a fraction of `|F|`).
pub fn sb_hash_baseline(
    problem: &Problem,
    tree: &mut RTree,
    omega_fraction: f64,
) -> AssignmentResult {
    let start = Instant::now();
    let stats_before = tree.stats();

    let functions: Vec<pref_geom::LinearFunction> = problem
        .functions()
        .iter()
        .map(|f| f.function.clone())
        .collect();
    let mut lists = FunctionLists::new(&functions);
    let omega = ((omega_fraction * problem.num_functions() as f64).ceil() as usize).max(1);

    let mut f_remaining: Vec<u32> = problem.functions().iter().map(|f| f.capacity).collect();
    let mut o_remaining: HashMap<RecordId, u32> = problem
        .objects()
        .iter()
        .map(|o| (o.id, o.capacity))
        .collect();
    let mut demand: u64 = f_remaining.iter().map(|&c| c as u64).sum();
    let mut supply: u64 = o_remaining.values().map(|&c| c as u64).sum();

    let mut skyline: Skyline = compute_skyline_bbs(tree);
    let mut ta_states: HashMap<RecordId, ReverseTopOne> = HashMap::new();

    let mut assignment = Assignment::new();
    let mut gauge = PeakTracker::new();
    let mut loops: u64 = 0;
    let mut searches: u64 = 0;

    while demand > 0 && supply > 0 && !skyline.is_empty() {
        loops += 1;

        // the per-loop full clone of the skyline point set — the allocation
        // churn the dense rewrite eliminated
        let sky_objects: Vec<(RecordId, Point)> = skyline
            .data_entries()
            .map(|d| (d.record, d.point.clone()))
            .collect();

        let mut object_best: HashMap<RecordId, (usize, f64)> = HashMap::new();
        for (record, point) in &sky_objects {
            searches += 1;
            let state = ta_states
                .entry(*record)
                .or_insert_with(|| ReverseTopOne::new(point.clone(), omega));
            match state.best(&lists) {
                Some(pair) => {
                    object_best.insert(*record, pair);
                }
                None => break,
            }
        }
        if object_best.is_empty() {
            break;
        }

        let candidate_functions: HashSet<usize> = object_best.values().map(|&(f, _)| f).collect();
        let mut function_best: HashMap<usize, (RecordId, f64)> = HashMap::new();
        for &fi in &candidate_functions {
            let mut best: Option<(RecordId, f64)> = None;
            for (record, point) in &sky_objects {
                let s = lists.score(fi, point);
                if best.is_none_or(|(_, bs)| s > bs) {
                    best = Some((*record, s));
                }
            }
            if let Some(b) = best {
                function_best.insert(fi, b);
            }
        }

        let mut pairs: Vec<(usize, RecordId, f64)> = Vec::new();
        for (&fi, &(obj, score)) in &function_best {
            if object_best.get(&obj).map(|&(f, _)| f) == Some(fi) {
                pairs.push((fi, obj, score));
            }
        }
        if pairs.is_empty() {
            if let Some((&fi, &(obj, score))) = function_best.iter().max_by(|a, b| {
                a.1 .1
                    .partial_cmp(&b.1 .1)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }) {
                pairs.push((fi, obj, score));
            } else {
                break;
            }
        }
        pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));

        let mut removed_objects = Vec::new();
        for (fi, obj, score) in pairs {
            if demand == 0 || supply == 0 {
                break;
            }
            assignment.push(problem.functions()[fi].id, obj, score);
            demand -= 1;
            supply -= 1;
            f_remaining[fi] -= 1;
            if f_remaining[fi] == 0 {
                lists.remove(fi);
            }
            let oc = o_remaining.get_mut(&obj).expect("object exists");
            *oc -= 1;
            if *oc == 0 {
                ta_states.remove(&obj);
                if let Some(sky_obj) = skyline.remove(obj) {
                    removed_objects.push(sky_obj);
                }
            }
        }

        if !removed_objects.is_empty() {
            update_skyline(tree, &mut skyline, removed_objects);
        }

        let ta_mem: u64 = ta_states.values().map(ReverseTopOne::memory_bytes).sum();
        gauge.observe(skyline.memory_bytes() + ta_mem);
    }

    let metrics = RunMetrics {
        object_io: tree.stats().since(&stats_before),
        aux_io: Default::default(),
        cpu_time: start.elapsed(),
        peak_memory_bytes: gauge.peak(),
        loops,
        searches,
    };
    AssignmentResult {
        assignment,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pref_assign::{oracle, sb, verify_stable, SbOptions};
    use pref_datagen::{anti_correlated_objects, uniform_weight_functions};

    #[test]
    fn baseline_and_dense_sb_agree() {
        let functions = uniform_weight_functions(60, 3, 301);
        let objects = anti_correlated_objects(600, 3, 302);
        let p = Problem::from_parts(functions, objects).unwrap();
        let mut tree_a = p.build_tree(Some(16), 0.02);
        let mut tree_b = p.build_tree(Some(16), 0.02);
        let base = sb_hash_baseline(&p, &mut tree_a, 0.025);
        let dense = sb(&p, &mut tree_b, &SbOptions::default());
        verify_stable(&p, &base.assignment).unwrap();
        assert_eq!(base.assignment.canonical(), dense.assignment.canonical());
        assert_eq!(base.assignment.canonical(), oracle(&p).canonical());
        // identical algorithm => identical object-tree I/O
        assert_eq!(
            base.metrics.object_io.io_accesses(),
            dense.metrics.object_io.io_accesses()
        );
    }
}
