//! Experiment harness reproducing the evaluation of the VLDB 2009 paper.
//!
//! Every figure of Section 7 has a corresponding binary (`fig08` … `fig17`)
//! that sweeps the same parameter, runs the same competitor algorithms, and
//! prints the same series (I/O accesses, CPU time, memory usage) as the paper.
//! The binaries share the building blocks in this library:
//!
//! * [`Params`] / [`Scale`] — the workload parameters of Table 2, at three
//!   scales (`quick` for smoke runs, `default` for laptop-sized runs, `paper`
//!   for the original parameter values),
//! * [`AlgorithmKind`] — the competitors (Brute Force, Chain, SB and its
//!   ablation variants, SB-alt),
//! * [`run_cell`] — generate a workload, build the index, run one algorithm
//!   and produce a [`Row`] of measurements,
//! * [`Report`] — collects rows, prints an aligned text table and writes
//!   machine-readable JSON next to it,
//! * [`sb_hash_baseline`] — the pre-refactor hash-map SB, kept so the
//!   `solver_bench` binary can measure what the dense-ID rewrite bought
//!   (results land in `BENCH_solver.json`, the repo's perf trajectory).
//!
//! Beyond the paper's figures, standing harness binaries gate the repo:
//! `solver_bench` (every solver vs. the exact oracle across workload shapes,
//! plus the columnar-kernel and parallel-solve cells), `engine_bench` (the
//! long-lived assignment engine's incremental repair vs. a full SB recompute
//! per update, written to `BENCH_engine.json`) and `kernel_bench` (the
//! scalar-vs-columnar scoring microbench in [`kernel_perf`], gating the
//! kernels' speedup, bit-identity and zero-allocation contracts). All exit
//! non-zero on divergence; the `all_figures` sweep accepts `--jobs N` to fan
//! the figure experiments out over worker threads.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod algorithms;
mod params;
mod report;
mod runner;

pub mod baseline;
pub mod experiments;
pub mod kernel_perf;
pub mod percentile;

pub use algorithms::AlgorithmKind;
pub use baseline::sb_hash_baseline;
pub use params::{Params, Scale};
pub use percentile::{percentile, percentile_us};
pub use report::{Report, Row};
pub use runner::{build_problem, run_cell};

use std::path::PathBuf;

/// Command-line options shared by every figure binary.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Workload scale.
    pub scale: Scale,
    /// Where to write the JSON results (defaults to `results/`).
    pub output_dir: PathBuf,
    /// Worker threads for sweep binaries that support parallel execution
    /// (`all_figures --jobs N`); the per-figure binaries run single-threaded
    /// and ignore it.
    pub jobs: usize,
}

impl CliOptions {
    /// Parses the common flags: `--quick`, `--paper-scale`, `--out <dir>`,
    /// `--jobs <n>`.
    pub fn from_args() -> Self {
        let mut scale = Scale::Default;
        let mut output_dir = PathBuf::from("results");
        let mut jobs = 1usize;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => scale = Scale::Quick,
                "--paper-scale" => scale = Scale::Paper,
                "--out" => {
                    if let Some(dir) = args.next() {
                        output_dir = PathBuf::from(dir);
                    }
                }
                "--jobs" => match args.next().map(|n| n.parse::<usize>()) {
                    Some(Ok(n)) if n >= 1 => jobs = n,
                    _ => {
                        eprintln!("--jobs requires a positive integer; try --help");
                        std::process::exit(2);
                    }
                },
                "--help" | "-h" => {
                    eprintln!(
                        "options: --quick | --paper-scale   workload scale (default: laptop scale)\n         --out <dir>              directory for JSON results (default: results/)\n         --jobs <n>               worker threads for the all_figures sweep (default: 1)"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown option {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        Self {
            scale,
            output_dir,
            jobs,
        }
    }
}
