//! Nearest-rank percentiles, shared by every latency-reporting harness.
//!
//! One definition, used everywhere: the p-th percentile of a sorted sample
//! is the smallest element such that at least `p · n` of the sample is ≤ it
//! — index `max(1, ceil(p·n)) − 1`. Nearest-rank always answers an element
//! *of the sample* (no interpolation, no invented values), is exact at the
//! edges (`p = 1.0` is the maximum), and does not round a p999 down onto a
//! p99 neighbour at small `n` the way round-to-nearest indexing does.
//!
//! The harness binaries previously carried two diverging private copies of
//! a round-to-nearest variant, which over-reports low percentiles on small
//! samples (the p50 of a 2-element sample was the *larger* element). This
//! module is the single replacement.

/// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) of an ascending-sorted sample, by
/// nearest rank. Returns 0 for an empty sample.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len();
    // ceil(q·n), clamped into [1, n], then to a 0-based index
    let rank = (q * n as f64).ceil() as usize;
    let rank = rank.clamp(1, n);
    sorted[rank - 1]
}

/// [`percentile`] over nanosecond samples, reported in microseconds.
pub fn percentile_us(sorted_nanos: &[u64], q: f64) -> f64 {
    percentile(sorted_nanos, q) as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn an_empty_sample_answers_zero() {
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile_us(&[], 0.999), 0.0);
    }

    #[test]
    fn n_equals_1_every_quantile_is_the_element() {
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(percentile(&[7], q), 7);
        }
    }

    #[test]
    fn n_equals_2_the_median_is_the_lower_element() {
        // ceil(0.5 · 2) = 1 → index 0: at least half the sample is ≤ 10.
        // (The old round-to-nearest copies answered 20 here.)
        assert_eq!(percentile(&[10, 20], 0.5), 10);
        assert_eq!(percentile(&[10, 20], 0.51), 20);
        assert_eq!(percentile(&[10, 20], 1.0), 20);
        assert_eq!(percentile(&[10, 20], 0.0), 10);
    }

    #[test]
    fn n_equals_10_matches_the_nearest_rank_table() {
        let sample: Vec<u64> = (1..=10).collect();
        // ceil(q·10) ranks: p50 → 5th, p90 → 9th, p99/p999 → 10th
        assert_eq!(percentile(&sample, 0.5), 5);
        assert_eq!(percentile(&sample, 0.9), 9);
        assert_eq!(percentile(&sample, 0.99), 10);
        assert_eq!(percentile(&sample, 0.999), 10);
        assert_eq!(percentile(&sample, 1.0), 10);
    }

    #[test]
    fn n_equals_1000_distinguishes_p99_from_p999() {
        let sample: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile(&sample, 0.5), 500);
        assert_eq!(percentile(&sample, 0.99), 990);
        // the tail rank the old rounding collapsed: ceil(0.999·1000) = 999
        assert_eq!(percentile(&sample, 0.999), 999);
        assert_eq!(percentile(&sample, 1.0), 1000);
    }

    #[test]
    fn microsecond_wrapper_scales_nanos() {
        assert_eq!(percentile_us(&[1_500, 2_500], 1.0), 2.5);
    }
}
